//! The router tier's front door and fan-in core: a TCP server speaking
//! the same `TADN` protocol as a single `tad-net` backend, multiplexing
//! every producer's trips across the backend fleet and routing each reply
//! back to the connection that owns the trip.
//!
//! ## Data flow
//!
//! ```text
//! producers ──TADN──▶ front reader ──partition map──▶ backend writer ──▶ tad-net server
//!    ▲                    │                                                  │
//!    │                    └─ Flush / SnapshotRequest: barrier over the map   │
//!    │                                                                       ▼
//!    └──── front writer ◀── per-conn queue ◀── fan-in (Core) ◀── backend reader
//! ```
//!
//! **Stickiness**: a trip's partition is the pure function
//! [`crate::backend_for`] over the *number of partitions*, and the
//! [`PartitionMap`] says which backend link currently serves each
//! partition. Every event of a trip reaches the same backend engine and
//! per-trip event order is preserved end to end (front reader →
//! per-backend FIFO channel → one TCP connection → the backend's own
//! ordered ingest). That is what makes routed scoring bit-identical to a
//! single in-process engine.
//!
//! **Barriers**: a front `Flush` fans out to every mapped live backend
//! and replies with [`FleetSnapshot::merged`] aggregate stats only after
//! all of them answered — and because each backend's `Stats` follows all
//! of its earlier replies on the same connection, the aggregate reply is
//! queued after every response caused by events the producer sent first:
//! the single-server quiesce contract, fleet-wide. `SnapshotRequest`
//! works the same way and replies with the [`FleetImage::merge`] of
//! every backend's capture, ready for [`crate::split_image`] onto a
//! fleet of a different size.
//!
//! ## The availability tier
//!
//! With standby backends ([`RouterServerBuilder::standby`]) the router
//! keeps a bounded **recovery journal** per active link: the last
//! checkpointed [`FleetImage`] of that backend (maintained cheaply by
//! [`RouterServer::checkpoint`], which prefers `TADD` delta captures
//! over full images once the backend's chain is armed) plus every ingest
//! frame forwarded since the checkpoint cut. When an active link dies,
//! the router promotes a standby: it installs the journal base image,
//! replays the journaled tail (chunked, with flush fences so replay can
//! never overflow the backend's ingest queue), and atomically flips the
//! partition map. Scores the producers already received are suppressed
//! by a per-trip delivered high-water mark, so the stream each producer
//! observes is **bit-identical** to an uninterrupted run — every score
//! exactly once, in order.
//!
//! [`RouterServer::handoff`] and [`RouterServer::rebalance`] use the
//! same machinery deliberately: drain the source engine's live sessions
//! (no completions fired), install them on the target, flip the map.
//! In-flight frames are held at a write-preferring gate and released in
//! per-trip order afterwards, so a migration is invisible to producers.
//!
//! **Failure without a standby** keeps the old contract: a dead backend
//! fails in-flight barriers and surfaces a typed
//! [`ErrorCode::EngineClosed`] error to every front connection with a
//! live trip on it; trips on healthy backends keep scoring.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::BufWriter;
use std::mem;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tad_metrics::{Counter, Histogram, MetricsSnapshot, Registry};
use tad_net::{
    read_request, write_response, ErrorCode, PollSource, RecvError, Request, Response,
    DEFAULT_MAX_FRAME,
};
use tad_serve::{
    delta_from_bytes, image_from_bytes, image_to_bytes, DeltaBase, FleetImage, FleetSnapshot,
    TripId,
};

use crate::backend::{
    backend_mux, BackendMsg, CaptureReply, LinkSender, MuxLink, Pending, PendingEntry,
};
use crate::partition::{backend_for, split_image};

/// Tunables of the router tier (each backend engine has its own
/// [`tad_serve::FleetConfig`] behind its own `tad-net` server).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Cap on one frame's payload length, applied to front requests and
    /// backend responses alike. Backend `Snapshot` replies of very large
    /// fleets may need a higher cap on every hop. Defaults to
    /// [`DEFAULT_MAX_FRAME`] (64 MiB).
    pub max_frame_len: usize,
    /// Bound of each front connection's outgoing response queue. A
    /// producer that stops draining loses responses beyond this (counted
    /// in [`RouterStats::responses_dropped`]) instead of growing router
    /// memory — including barrier replies, so a non-reading producer's
    /// `flush()` eventually times out client-side rather than wedging the
    /// router.
    pub response_queue: usize,
    /// Bound of each backend's forwarding channel. A saturated backend
    /// back-pressures the front reader threads that route to it (the
    /// engine-level `Backpressure` contract still comes from the backend
    /// itself).
    pub backend_queue: usize,
    /// Cap on each link's recovery journal, in frames. A journal that
    /// would exceed this is discarded (the link stops being recoverable
    /// until the next [`RouterServer::checkpoint`] re-bases it) rather
    /// than growing without bound — size it to the expected ingest volume
    /// of one checkpoint interval. Only meaningful with standbys.
    pub journal_limit: usize,
    /// How long a producer's ingest frame may wait out a failover before
    /// the router gives up and surfaces a typed `EngineClosed` error.
    /// Only meaningful with standbys; without them dead backends answer
    /// immediately.
    pub failover_wait: Duration,
    /// Set `TCP_NODELAY` on accepted and backend sockets.
    pub nodelay: bool,
    /// Kernel accept-queue depth requested for the front listening
    /// socket (default 1024, capped by the OS `somaxconn`; `0` keeps the
    /// platform default, typically 128). See
    /// [`tad_net::widen_accept_backlog`] for why the 128-slot default
    /// stalls connect storms of a few hundred producers.
    pub accept_backlog: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_frame_len: DEFAULT_MAX_FRAME,
            response_queue: 65_536,
            backend_queue: 65_536,
            journal_limit: 8_192,
            failover_wait: Duration::from_secs(10),
            nodelay: true,
            accept_backlog: 1024,
        }
    }
}

/// Why the router could not be built or bound.
#[derive(Debug)]
pub enum RouterError {
    /// Binding or configuring the front listening socket failed.
    Io(std::io::Error),
    /// The builder was given no backend addresses.
    NoBackends,
    /// Connecting to one of the backends (active or standby) failed.
    BackendConnect {
        /// Index of the backend in the builder's combined list (actives
        /// first, then standbys).
        index: usize,
        /// The underlying socket failure.
        error: std::io::Error,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "socket error: {e}"),
            RouterError::NoBackends => write!(f, "a router needs at least one backend address"),
            RouterError::BackendConnect { index, error } => {
                write!(f, "cannot connect to backend {index}: {error}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Io(e)
    }
}

/// Why a router-driven admin operation ([`RouterServer::checkpoint`],
/// [`RouterServer::handoff`], [`RouterServer::rebalance`]) failed.
#[derive(Debug)]
pub enum RouterAdminError {
    /// The operation needed a standby backend and the pool is empty.
    NoStandby,
    /// [`RouterServer::handoff`] was asked to move a partition the map
    /// does not have.
    NoSuchPartition {
        /// The requested partition.
        partition: u32,
        /// How many partitions the map currently has.
        partitions: u32,
    },
    /// The requested topology is impossible (e.g. rebalancing to zero
    /// partitions).
    InvalidTopology(&'static str),
    /// A backend refused or failed mid-operation.
    Backend {
        /// The link index of the failing backend.
        backend: u32,
        /// What went wrong, as reported on the wire or by the link.
        detail: String,
    },
}

impl std::fmt::Display for RouterAdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterAdminError::NoStandby => write!(f, "no standby backend available"),
            RouterAdminError::NoSuchPartition { partition, partitions } => {
                write!(f, "partition {partition} does not exist (map has {partitions})")
            }
            RouterAdminError::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            RouterAdminError::Backend { backend, detail } => {
                write!(f, "backend {backend}: {detail}")
            }
        }
    }
}

impl std::error::Error for RouterAdminError {}

/// What one [`RouterServer::checkpoint`] sweep captured per backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointStats {
    /// Backends that served a full `TADF` image this sweep.
    pub full_captures: u64,
    /// Backends that served an incremental `TADD` delta this sweep —
    /// the steady state once every chain is armed.
    pub delta_captures: u64,
}

/// What a completed [`RouterServer::handoff`] or
/// [`RouterServer::rebalance`] moved.
#[derive(Clone, Copy, Debug)]
pub struct HandoffStats {
    /// Live sessions delivered into their new backend(s).
    pub sessions_moved: u64,
    /// The partition-map epoch after the flip.
    pub epoch: u64,
}

/// Point-in-time counters of the router tier (per-backend engine counters
/// travel in the aggregated `Stats` reply to a front `Flush`).
#[derive(Clone, Copy, Debug)]
pub struct RouterStats {
    /// Front connections accepted since the router started.
    pub fronts_accepted: u64,
    /// Front connections currently open.
    pub fronts_open: u64,
    /// Responses dropped because the owning front connection's queue was
    /// full, the connection was gone, or no connection owned the trip.
    pub responses_dropped: u64,
    /// Backend links the router was built over (actives plus standbys).
    pub backends_total: u64,
    /// Backend links whose connection is still healthy.
    pub backends_alive: u64,
    /// Standby backends currently available for promotion.
    pub standbys_available: u64,
    /// Completed standby promotions since the router started.
    pub failovers: u64,
    /// Wall-clock duration of the most recent completed failover, in
    /// microseconds (0 if none happened yet).
    pub last_recovery_micros: u64,
    /// The partition map's epoch: bumped by every failover flip, handoff,
    /// and rebalance.
    pub partition_epoch: u64,
}

/// A front connection's handle in the fan-in registry.
struct FrontHandle {
    tx: SyncSender<Response>,
    stream: TcpStream,
}

/// Where a live trip's events go and who gets its replies.
struct TripRoute {
    /// The front connection that owns the trip's responses.
    conn: u64,
    /// The backend link currently serving the trip's partition. Updated
    /// at every map flip; atomic so flips need only a read lock on the
    /// routing table.
    backend: AtomicU32,
    /// Events forwarded after the claim was created — 0 means the claim
    /// is start-only, so a refused/bounced `TripStart` can release it
    /// without stranding the id. Atomic so the per-segment bump needs
    /// only a read lock on the routing table.
    forwarded: AtomicU32,
    /// Delivered-score high-water mark: `seq + 1` of the last `Score`
    /// delivered to the front connection. During journal replay this is
    /// what separates duplicates (suppressed) from scores the producer
    /// never saw (delivered) — the exactly-once guarantee.
    delivered: AtomicU32,
    /// True while the trip's backend is being failed over; gates the
    /// replay suppression logic.
    replaying: AtomicBool,
}

impl TripRoute {
    fn new(conn: u64, backend: u32) -> Self {
        TripRoute {
            conn,
            backend: AtomicU32::new(backend),
            forwarded: AtomicU32::new(0),
            delivered: AtomicU32::new(0),
            replaying: AtomicBool::new(false),
        }
    }
}

/// What a pending fleet-wide barrier is waiting to answer.
#[derive(Clone, Copy)]
pub(crate) enum BarrierKind {
    /// A front `Flush` waiting on merged `Stats`.
    Flush,
    /// A front `SnapshotRequest` waiting on a merged image.
    Snapshot,
    /// A front `MetricsRequest` waiting on merged registries.
    Metrics,
}

/// Which backend link serves each partition, and a flip counter.
///
/// A trip's partition is `backend_for(id, slots.len())`; `slots[k]` is
/// the link index currently serving partition `k`. The slots are always
/// distinct links. `epoch` bumps on every flip (failover, handoff,
/// rebalance), which makes "did the topology change under me" a cheap
/// question for tests and operators.
struct PartitionMap {
    epoch: u64,
    slots: Vec<u32>,
}

/// The recovery base a dead backend would be restored from: the image of
/// its last completed checkpoint, kept either verbatim or as a delta
/// chain folded down eagerly (a [`DeltaBase`] *is* the folded image plus
/// chain bookkeeping, so promotion never replays deltas — it is always
/// install-image-then-replay-tail).
enum RecoveryBase {
    /// A plain image; the backend-side delta chain (if any) is not yet
    /// linked to it.
    Plain(FleetImage),
    /// An image tracking the backend's delta chain: `TADD` increments
    /// apply directly.
    Chained(DeltaBase),
}

impl RecoveryBase {
    fn image(&self) -> &FleetImage {
        match self {
            RecoveryBase::Plain(image) => image,
            RecoveryBase::Chained(base) => base.image(),
        }
    }

    /// Folds one `TADD` blob into the base. A `Plain` base adopts the
    /// chain lazily when the first increment (`seq == 1`) arrives —
    /// that is how the router learns the epoch the backend armed at the
    /// full capture that produced this base.
    fn apply_delta(&mut self, blob: Bytes) -> Result<(), String> {
        let delta = delta_from_bytes(blob).map_err(|e| format!("undecodable delta: {e}"))?;
        match self {
            RecoveryBase::Chained(base) => {
                base.apply(&delta).map_err(|e| format!("delta chain broken: {e}"))
            }
            RecoveryBase::Plain(image) => {
                if delta.seq != 1 {
                    return Err(format!(
                        "delta seq {} does not start a fresh chain over a plain base",
                        delta.seq
                    ));
                }
                let mut base = DeltaBase::new(mem::take(image), delta.base_epoch);
                base.apply(&delta).map_err(|e| format!("delta chain broken: {e}"))?;
                *self = RecoveryBase::Chained(base);
                Ok(())
            }
        }
    }
}

/// One link's bounded recovery journal: the checkpoint base plus every
/// ingest frame forwarded since the checkpoint cut. `base + frames`
/// replayed onto a fresh backend reproduces the dead backend's state and
/// score stream bit-identically — *if* `tail_ok` (the tail is complete:
/// no overflow, no poisoned frame since the base was taken).
struct Journal {
    base: RecoveryBase,
    frames: Vec<Request>,
    /// True when `base + frames` is a faithful reconstruction.
    tail_ok: bool,
    /// True while forwarded ingest frames are being appended. Cleared on
    /// overflow/poison; re-set by the next checkpoint cut.
    recording: bool,
    /// Frame count at the moment the in-flight capture frame hit the
    /// wire: everything before it is covered by the capture reply and is
    /// dropped when the reply applies.
    pending_cut: Option<usize>,
    /// True when the backend's delta chain provably continues this base,
    /// i.e. a `DeltaRequest` increment would apply cleanly. A front
    /// `SnapshotRequest` barrier re-arms the backend's chain at an epoch
    /// the router never sees, so staging one disarms the journal.
    armed: bool,
    /// Bumped whenever something invalidates the chain linkage
    /// out-of-band (a front snapshot barrier); captures compare it
    /// across their stage→apply window so a full capture cannot re-arm
    /// over a chain that was re-based mid-flight.
    chain_breaks: u64,
    limit: usize,
}

impl Journal {
    fn new(limit: usize, enabled: bool) -> Self {
        Journal {
            // A fresh backend is an empty fleet: the empty image plus
            // everything ever forwarded is a faithful tail from frame 0.
            base: RecoveryBase::Plain(FleetImage::default()),
            frames: Vec::new(),
            tail_ok: enabled,
            recording: enabled,
            pending_cut: None,
            armed: false,
            chain_breaks: 0,
            limit,
        }
    }

    /// Appends one forwarded ingest frame; discards the journal instead
    /// of exceeding the cap.
    fn record(&mut self, req: &Request) {
        if !self.recording {
            return;
        }
        if self.frames.len() >= self.limit {
            self.frames = Vec::new();
            self.tail_ok = false;
            self.recording = false;
        } else {
            self.frames.push(req.clone());
        }
    }

    /// A journaled frame was accepted by the channel but refused by the
    /// backend engine (`Backpressure`): the tail now contains a frame
    /// that was never scored, so replaying it would diverge. Discard.
    fn poison(&mut self) {
        if self.recording || self.tail_ok {
            self.frames = Vec::new();
            self.tail_ok = false;
            self.recording = false;
        }
    }

    /// The capture frame just hit the wire (caller holds the stage
    /// lock): remember the cut so the reply knows which prefix it
    /// covers, and restart recording if the journal had been discarded —
    /// the new base will cover everything up to this very cut.
    fn stage_cut(&mut self, enabled: bool) {
        if !self.tail_ok && enabled {
            self.frames.clear();
            self.recording = true;
        }
        self.pending_cut = Some(self.frames.len());
    }

    /// The in-flight capture failed; keep the journal as it was.
    fn abort_cut(&mut self) {
        self.pending_cut = None;
    }

    /// A full image reply applies: it covers everything before the cut.
    /// `breaks_at_stage` guards the re-arm — see [`Journal::chain_breaks`].
    fn apply_full(&mut self, image: FleetImage, breaks_at_stage: u64) {
        let cut = self.pending_cut.take().unwrap_or(0).min(self.frames.len());
        self.frames.drain(..cut);
        self.base = RecoveryBase::Plain(image);
        self.armed = breaks_at_stage == self.chain_breaks;
        self.tail_ok = self.recording;
    }

    /// A delta reply applies: fold it into the base, then drop the
    /// covered prefix exactly as a full capture would.
    fn apply_delta(&mut self, blob: Bytes) -> Result<(), String> {
        self.base.apply_delta(blob)?;
        let cut = self.pending_cut.take().unwrap_or(0).min(self.frames.len());
        self.frames.drain(..cut);
        self.tail_ok = self.recording;
        Ok(())
    }

    /// Whether `base + frames` can reproduce the backend right now.
    fn recoverable(&self) -> bool {
        self.tail_ok
    }

    /// A front snapshot barrier re-based the backend's delta chain out
    /// from under the router: the next capture must be a full image.
    fn break_chain(&mut self) {
        self.armed = false;
        self.chain_breaks += 1;
    }

    /// The backend's state was just replaced wholesale (an `Install`):
    /// the journal restarts from exactly that image.
    fn reset_to(&mut self, image: FleetImage, enabled: bool) {
        self.base = RecoveryBase::Plain(image);
        self.frames.clear();
        self.pending_cut = None;
        self.armed = false;
        self.chain_breaks += 1;
        self.recording = enabled;
        self.tail_ok = enabled;
    }
}

/// The router's handle on one backend connection.
pub(crate) struct BackendLink {
    /// False once the connection failed; checked before forwarding.
    alive: AtomicBool,
    /// Feed of the backend mux's per-link forwarding channel (send +
    /// poller wake).
    tx: LinkSender,
    /// Requests in flight on this connection that expect trip-less
    /// replies, in wire order.
    pub(crate) pending: Pending,
    /// Serializes admin staging (exclusive) against journaled ingest
    /// sends (shared), so pending-queue order always equals wire order
    /// and a checkpoint cut lands at exactly the wire position of its
    /// capture frame.
    stage: RwLock<()>,
    /// This link's recovery journal.
    journal: Mutex<Journal>,
    /// True while this link is the *target* of a journal replay; gates
    /// suppression of replay-induced replies that have no route (e.g.
    /// completions of trips that finished pre-crash).
    replaying: AtomicBool,
    /// Ensures the heavyweight half of the down path (failover spawn or
    /// route sweep) runs exactly once even though both link threads call
    /// it.
    down_handled: AtomicBool,
    /// A handle on the socket for shutdown wake-ups.
    pub(crate) stream: TcpStream,
}

/// Handles into the router's own metrics registry (`router.*`), cached at
/// bind time. These describe the router process itself; a front
/// `MetricsRequest` merges them with every backend's snapshot.
struct RouterMetrics {
    registry: Arc<Registry>,
    /// `router.forward_ns`: time from picking a live backend to its
    /// forwarding channel accepting the frame — dominated by channel wait
    /// when a backend writer saturates, so its tail is the router-side
    /// congestion signal.
    forward_ns: Arc<Histogram>,
    /// `router.fanin_depth`: fleet-wide barriers in flight, observed at
    /// each barrier open (including the one being opened).
    fanin_depth: Arc<Histogram>,
    /// `router.failovers`: completed standby promotions.
    failovers: Arc<Counter>,
    /// `router.handoff_sessions`: live sessions moved by handoffs and
    /// rebalances.
    handoff_sessions: Arc<Counter>,
    /// `router.replay_suppressed`: replies swallowed during journal
    /// replay because the producer had already received them (the
    /// duplicate side of the exactly-once ledger).
    replay_suppressed: Arc<Counter>,
    /// `router.recovery_micros`: wall-clock duration of completed
    /// failovers.
    recovery_micros: Arc<Histogram>,
    /// `router.throttled`: trip-scoped `Throttled` refusals fanned back
    /// in from any backend — the fleet-wide overload signal as seen at
    /// the router.
    throttled: Arc<Counter>,
    /// `router.backend.N.forward_ns`: the per-link split of
    /// `forward_ns`, same clock.
    per_backend: Vec<Arc<Histogram>>,
    /// `router.backend.N.throttled`: the per-link split of
    /// `router.throttled` — which backend is shedding.
    per_backend_throttled: Vec<Arc<Counter>>,
}

impl RouterMetrics {
    fn register(num_links: usize) -> Self {
        let registry = Arc::new(Registry::new());
        RouterMetrics {
            forward_ns: registry.histogram("router.forward_ns"),
            fanin_depth: registry.histogram("router.fanin_depth"),
            failovers: registry.counter("router.failovers"),
            handoff_sessions: registry.counter("router.handoff_sessions"),
            replay_suppressed: registry.counter("router.replay_suppressed"),
            recovery_micros: registry.histogram("router.recovery_micros"),
            throttled: registry.counter("router.throttled"),
            per_backend: (0..num_links)
                .map(|idx| registry.histogram(&format!("router.backend.{idx}.forward_ns")))
                .collect(),
            per_backend_throttled: (0..num_links)
                .map(|idx| registry.counter(&format!("router.backend.{idx}.throttled")))
                .collect(),
            registry,
        }
    }
}

/// One fleet-wide barrier in flight: a front `Flush`/`SnapshotRequest`
/// fanned out to every mapped live backend, collecting one contribution
/// (a reply or a failure) per backend before answering the front
/// connection.
struct Barrier {
    kind: BarrierKind,
    conn: u64,
    /// False until the fan-out loop knows how many backends accepted the
    /// frame; contributions arriving earlier just accumulate.
    sealed: bool,
    expected: usize,
    got: usize,
    stats: Vec<FleetSnapshot>,
    images: Vec<(u32, Bytes)>,
    metrics: Vec<MetricsSnapshot>,
    failed: Option<(ErrorCode, String)>,
}

/// The router's shared state: backend links, the partition map, front
/// registry, trip routing table, and in-flight barriers.
pub(crate) struct Core {
    links: Vec<BackendLink>,
    /// Which link serves each partition. RwLock: the hot forward path
    /// only reads it; failover/handoff flips take the write lock for the
    /// duration of a pointer swap.
    map: RwLock<PartitionMap>,
    /// Standby links available for promotion, in builder order.
    standbys: Mutex<Vec<u32>>,
    /// True when the router was built with standbys: journals record,
    /// forwards ride out failovers, and dead actives are promoted over.
    journaling: bool,
    failover_wait: Duration,
    /// The topology gate. Forwards and front barriers hold it shared for
    /// the duration of one send pass; failover and handoff hold it
    /// exclusive across capture→install→flip, so no producer frame can
    /// slip between a drain and its map flip.
    gate: RwLock<()>,
    /// Serializes router-driven admin operations (checkpoint sweeps,
    /// handoffs, rebalances) against each other.
    admin: Mutex<()>,
    /// True once shutdown starts: backend deaths stop spawning recovery.
    closing: AtomicBool,
    recovery_threads: Mutex<Vec<JoinHandle<()>>>,
    failovers: AtomicU64,
    last_recovery_micros: AtomicU64,
    fronts: RwLock<HashMap<u64, FrontHandle>>,
    /// Trip routing table. RwLock, not Mutex: the hot per-segment paths
    /// (forwarding an event, fanning a `Score` back in) only read it, so
    /// front readers and backend readers don't serialize on the map.
    trips: RwLock<HashMap<TripId, TripRoute>>,
    barriers: Mutex<HashMap<u64, Barrier>>,
    next_barrier: AtomicU64,
    fronts_accepted: AtomicU64,
    responses_dropped: AtomicU64,
    metrics: RouterMetrics,
}

impl Core {
    fn new(links: Vec<BackendLink>, actives: usize, cfg: &RouterConfig) -> Self {
        let metrics = RouterMetrics::register(links.len());
        let standbys: Vec<u32> = (actives as u32..links.len() as u32).collect();
        Core {
            map: RwLock::new(PartitionMap { epoch: 0, slots: (0..actives as u32).collect() }),
            journaling: !standbys.is_empty(),
            standbys: Mutex::new(standbys),
            failover_wait: cfg.failover_wait,
            gate: RwLock::new(()),
            admin: Mutex::new(()),
            closing: AtomicBool::new(false),
            recovery_threads: Mutex::new(Vec::new()),
            failovers: AtomicU64::new(0),
            last_recovery_micros: AtomicU64::new(0),
            links,
            fronts: RwLock::new(HashMap::new()),
            trips: RwLock::new(HashMap::new()),
            barriers: Mutex::new(HashMap::new()),
            next_barrier: AtomicU64::new(0),
            fronts_accepted: AtomicU64::new(0),
            responses_dropped: AtomicU64::new(0),
            metrics,
        }
    }

    fn register_front(&self, conn: u64, handle: FrontHandle) {
        self.fronts_accepted.fetch_add(1, Ordering::Relaxed);
        self.fronts.write().expect("fronts lock").insert(conn, handle);
    }

    fn unregister_front(&self, conn: u64) {
        self.fronts.write().expect("fronts lock").remove(&conn);
        // Free the closing connection's routing claims so a reconnecting
        // producer can re-attach to its trips (the backend sessions live
        // on until they end or their TTL reaps them).
        self.trips.write().expect("trips lock").retain(|_, route| route.conn != conn);
    }

    fn dropped(&self) {
        self.responses_dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn suppressed(&self) {
        self.metrics.replay_suppressed.add(1);
    }

    /// Best-effort delivery to one front connection's response queue.
    fn deliver_conn(&self, conn: u64, resp: Response) {
        let fronts = self.fronts.read().expect("fronts lock");
        let sent = fronts.get(&conn).is_some_and(|h| h.tx.try_send(resp).is_ok());
        if !sent {
            self.dropped();
        }
    }

    /// Resolves a pending entry that will never get its reply.
    fn fail_entry(&self, entry: PendingEntry, code: ErrorCode, detail: String) {
        match entry {
            PendingEntry::Barrier(_, bid) => self.contribute(bid, |b| {
                b.failed.get_or_insert((code, detail));
            }),
            PendingEntry::Checkpoint(tx) => {
                let _ = tx.try_send(Err(detail));
            }
            PendingEntry::Install(tx) => {
                let _ = tx.try_send(Err(detail));
            }
            PendingEntry::Drain(tx) => {
                let _ = tx.try_send(Err(detail));
            }
            PendingEntry::Fence(tx) => {
                let _ = tx.try_send(Err(detail));
            }
        }
    }

    /// A trip-less reply arrived that does not answer the entry at the
    /// head of the link's pending queue: the reply stream is
    /// desynchronized (a protocol fault, not an expected state). Fail
    /// the mismatched entry loudly rather than mis-attributing replies.
    fn desync(&self, entry: PendingEntry) {
        self.dropped();
        self.fail_entry(
            entry,
            ErrorCode::EngineClosed,
            "backend reply stream desynchronized".to_string(),
        );
    }

    /// Fan-in: one frame arrived from backend link `idx`.
    pub(crate) fn on_backend_response(&self, idx: u32, resp: Response) {
        match resp {
            Response::Score(update) => {
                // Fast path: deliver and advance the per-trip delivered
                // high-water mark. During replay the mark is the
                // duplicate filter: anything below it was already
                // delivered pre-crash.
                enum Verdict {
                    Deliver(u64),
                    Duplicate,
                    NoRoute,
                }
                let verdict = {
                    let trips = self.trips.read().expect("trips lock");
                    match trips.get(&update.id) {
                        Some(route) => {
                            if route.replaying.load(Ordering::Relaxed)
                                && update.seq < route.delivered.load(Ordering::Relaxed)
                            {
                                Verdict::Duplicate
                            } else {
                                route.delivered.store(update.seq + 1, Ordering::Relaxed);
                                Verdict::Deliver(route.conn)
                            }
                        }
                        None => Verdict::NoRoute,
                    }
                };
                match verdict {
                    Verdict::Deliver(conn) => self.deliver_conn(conn, Response::Score(update)),
                    Verdict::Duplicate => self.suppressed(),
                    Verdict::NoRoute => {
                        // Replay of a trip whose route is long gone
                        // (completed pre-crash): expected, not a drop.
                        if self.links[idx as usize].replaying.load(Ordering::Relaxed) {
                            self.suppressed();
                        } else {
                            self.dropped();
                        }
                    }
                }
            }
            Response::TripComplete(tc) => {
                // The trip is finished: forget the route so the id can be
                // started again later.
                let conn = self.trips.write().expect("trips lock").remove(&tc.id).map(|r| r.conn);
                match conn {
                    Some(conn) => self.deliver_conn(conn, Response::TripComplete(tc)),
                    None if self.links[idx as usize].replaying.load(Ordering::Relaxed) => {
                        self.suppressed()
                    }
                    None => self.dropped(),
                }
            }
            Response::PolicyNotice { id, action, seg } => {
                // Sanitization outcomes are trip-scoped, like scores: fan
                // them in to whichever front connection owns the trip. A
                // replaying route already saw its pre-crash notices, and
                // notices carry no sequence to dedup on, so replay
                // suppresses them wholesale.
                enum Verdict {
                    Deliver(u64),
                    Replaying,
                    NoRoute,
                }
                let verdict = {
                    let trips = self.trips.read().expect("trips lock");
                    match trips.get(&id) {
                        Some(r) if r.replaying.load(Ordering::Relaxed) => Verdict::Replaying,
                        Some(r) => Verdict::Deliver(r.conn),
                        None => Verdict::NoRoute,
                    }
                };
                match verdict {
                    Verdict::Deliver(conn) => {
                        self.deliver_conn(conn, Response::PolicyNotice { id, action, seg })
                    }
                    Verdict::Replaying => self.suppressed(),
                    Verdict::NoRoute => self.dropped(),
                }
            }
            Response::Stats(stats) => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Barrier(BarrierKind::Flush, bid)) => {
                    self.contribute(bid, |b| b.stats.push(stats));
                }
                Some(PendingEntry::Fence(tx)) => {
                    let _ = tx.try_send(Ok(stats));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Snapshot { image } => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Barrier(BarrierKind::Snapshot, bid)) => {
                    self.contribute(bid, |b| b.images.push((idx, image)));
                }
                Some(PendingEntry::Checkpoint(tx)) => {
                    let _ = tx.try_send(Ok(CaptureReply::Full(image)));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Metrics(snapshot) => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Barrier(BarrierKind::Metrics, bid)) => {
                    self.contribute(bid, |b| b.metrics.push(snapshot));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Delta { delta } => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Checkpoint(tx)) => {
                    let _ = tx.try_send(Ok(CaptureReply::Delta(delta)));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Installed { sessions } => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Install(tx)) => {
                    let _ = tx.try_send(Ok(sessions));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Drained { image } => match self.links[idx as usize].pending.pop() {
                Some(PendingEntry::Drain(tx)) => {
                    let _ = tx.try_send(Ok(image));
                }
                Some(other) => self.desync(other),
                None => self.dropped(),
            },
            Response::Error { code, trip: Some(id), retry_after_ms, detail } => {
                if matches!(code, ErrorCode::Backpressure | ErrorCode::Throttled) {
                    // The frame made it into the journal but the engine
                    // refused it (backpressure) or shed it (admission
                    // control): the recorded tail no longer matches what
                    // was scored.
                    self.links[idx as usize].journal.lock().expect("journal lock").poison();
                }
                if matches!(code, ErrorCode::Throttled) {
                    // Per-backend throttle accounting: the router is how
                    // a fleet operator sees *which* backend is shedding.
                    self.metrics.throttled.add(1);
                    self.metrics.per_backend_throttled[idx as usize].add(1);
                }
                let found = {
                    let trips = self.trips.read().expect("trips lock");
                    trips.get(&id).map(|r| {
                        (
                            r.conn,
                            r.forwarded.load(Ordering::Relaxed),
                            r.replaying.load(Ordering::Relaxed),
                        )
                    })
                };
                match found {
                    Some((_, _, true)) => {
                        // Replay-induced (e.g. a replayed TripStart for a
                        // session already in the installed image): the
                        // producer never sent this frame post-crash, so
                        // it must not see an error for it.
                        self.suppressed();
                    }
                    Some((conn, forwarded, false)) => {
                        // A refused, bounced, or shed TripStart (nothing
                        // forwarded after the claim) must not strand its
                        // id: the producer will retry it. Error frames are
                        // rare, so the write-lock upgrade (with a
                        // re-check) is off the hot path.
                        if forwarded == 0
                            && matches!(
                                code,
                                ErrorCode::Rejected
                                    | ErrorCode::Backpressure
                                    | ErrorCode::Throttled
                            )
                        {
                            let mut trips = self.trips.write().expect("trips lock");
                            if trips.get(&id).is_some_and(|r| {
                                r.conn == conn && r.forwarded.load(Ordering::Relaxed) == 0
                            }) {
                                trips.remove(&id);
                            }
                        }
                        // `retry_after_ms` rides through untouched: the
                        // producer's pacing hint comes from the backend
                        // that shed the frame.
                        self.deliver_conn(
                            conn,
                            Response::Error { code, trip: Some(id), retry_after_ms, detail },
                        );
                    }
                    None => self.dropped(),
                }
            }
            Response::Error { code, trip: None, retry_after_ms: _, detail } => match code {
                // A trip-less BadFrame/Backpressure/Throttled answers
                // nothing in the pending queue (throttle notices pace the
                // router's own backend link, they do not consume an admin
                // slot); popping here would desynchronize the queue.
                ErrorCode::BadFrame | ErrorCode::Backpressure => self.dropped(),
                ErrorCode::Throttled => {
                    self.metrics.throttled.add(1);
                    self.metrics.per_backend_throttled[idx as usize].add(1);
                    self.dropped();
                }
                // SnapshotFailed / EngineClosed / Rejected each answer
                // exactly the admin request at the head of the queue.
                _ => match self.links[idx as usize].pending.pop() {
                    Some(entry) => self.fail_entry(entry, code, detail),
                    None => self.dropped(),
                },
            },
        }
    }

    /// Sweeps the routing table for a dead backend's trips: remove them
    /// and surface a typed error per trip (the no-standby contract).
    fn fail_routes(&self, idx: u32) {
        let dead: Vec<(TripId, u64)> = {
            let mut trips = self.trips.write().expect("trips lock");
            let dead: Vec<(TripId, u64)> = trips
                .iter()
                .filter(|(_, route)| route.backend.load(Ordering::Relaxed) == idx)
                .map(|(&id, route)| (id, route.conn))
                .collect();
            for (id, _) in &dead {
                trips.remove(id);
            }
            dead
        };
        for (id, conn) in dead {
            self.deliver_conn(
                conn,
                Response::Error {
                    code: ErrorCode::EngineClosed,
                    trip: Some(id),
                    retry_after_ms: None,
                    detail: format!("backend {idx} connection lost"),
                },
            );
        }
    }

    /// A backend connection died. Both of a link's threads run this on
    /// exit; the cheap half (mark dead, wake the other half, drain
    /// staged entries) is idempotent, and `down_handled` makes the
    /// heavyweight half — spawning a failover, or failing the link's
    /// routes — run exactly once.
    ///
    /// An associated function taking the `Arc` (not a method) because a
    /// recoverable death spawns a recovery thread that must own a clone
    /// of the core.
    pub(crate) fn backend_down(core: &Arc<Core>, idx: u32) {
        let link = &core.links[idx as usize];
        link.alive.store(false, Ordering::SeqCst);
        // Make sure the other half of the link dies too (the reader wakes
        // from its blocking read; the writer's next write fails).
        let _ = link.stream.shutdown(Shutdown::Both);
        core.standbys.lock().expect("standby pool").retain(|&s| s != idx);
        let entries = link.pending.drain_all();
        let first = !link.down_handled.swap(true, Ordering::SeqCst);
        let in_map = core.map.read().expect("partition map").slots.contains(&idx);
        let recoverable = first
            && in_map
            && core.journaling
            && !core.closing.load(Ordering::SeqCst)
            && link.journal.lock().expect("journal lock").recoverable()
            && !core.standbys.lock().expect("standby pool").is_empty();
        if recoverable {
            // Mark the partition's live trips replaying *before* the
            // recovery thread starts pushing frames, so every
            // replay-induced reply is classified correctly.
            {
                let trips = core.trips.read().expect("trips lock");
                for route in trips.values() {
                    if route.backend.load(Ordering::Relaxed) == idx {
                        route.replaying.store(true, Ordering::Relaxed);
                    }
                }
            }
            // Barriers staged on the dead link move to the promoted
            // backend; everything else (admin channels) fails typed.
            let mut restage = Vec::new();
            for entry in entries {
                match entry {
                    PendingEntry::Barrier(kind, bid) => restage.push((kind, bid)),
                    other => core.fail_entry(
                        other,
                        ErrorCode::EngineClosed,
                        format!("backend {idx} connection lost"),
                    ),
                }
            }
            let thread_core = Arc::clone(core);
            let handle = std::thread::Builder::new()
                .name(format!("tad-router-recover-{idx}"))
                .spawn(move || thread_core.recover(idx, restage))
                .expect("spawn recovery thread");
            core.recovery_threads.lock().expect("recovery threads").push(handle);
            return;
        }
        for entry in entries {
            core.fail_entry(
                entry,
                ErrorCode::EngineClosed,
                format!("backend {idx} connection lost"),
            );
        }
        if first && in_map {
            core.fail_routes(idx);
        }
    }

    /// Pops the next live standby, or `None` when the pool is dry.
    fn take_standby(&self) -> Option<u32> {
        let mut pool = self.standbys.lock().expect("standby pool");
        while !pool.is_empty() {
            let idx = pool.remove(0);
            if self.links[idx as usize].alive.load(Ordering::SeqCst) {
                return Some(idx);
            }
        }
        None
    }

    /// The failover driver, on its own thread. Holds the topology gate
    /// exclusively: producers block (bounded by `failover_wait`) instead
    /// of erroring, and resume against the flipped map.
    fn recover(&self, dead: u32, restage: Vec<(BarrierKind, u64)>) {
        let started = Instant::now();
        let _gate = self.gate.write().expect("topology gate");
        loop {
            let Some(target) = self.take_standby() else {
                self.abandon_recovery(dead, &restage);
                return;
            };
            match self.try_promote(dead, target, &restage) {
                Ok(_moved) => {
                    let micros = started.elapsed().as_micros() as u64;
                    self.metrics.recovery_micros.record(micros);
                    self.last_recovery_micros.store(micros, Ordering::Relaxed);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    self.metrics.failovers.add(1);
                    return;
                }
                Err(_) => continue, // next standby, if any
            }
        }
    }

    /// Every standby was tried (or the pool was raced empty): fall back
    /// to the no-standby contract.
    fn abandon_recovery(&self, dead: u32, restage: &[(BarrierKind, u64)]) {
        for &(_, bid) in restage {
            self.contribute(bid, |b| {
                b.failed.get_or_insert((
                    ErrorCode::EngineClosed,
                    format!("backend {dead} connection lost and no standby could take over"),
                ));
            });
        }
        self.fail_routes(dead);
    }

    /// One promotion attempt: install the dead link's journal base on
    /// `target`, replay the journaled tail (fenced), verify the target
    /// survived, then flip the map and restage the dead link's barriers.
    /// Any failure leaves `target` consumed (it is dead or suspect) and
    /// the caller tries the next standby.
    fn try_promote(
        &self,
        dead: u32,
        target: u32,
        restage: &[(BarrierKind, u64)],
    ) -> Result<u64, String> {
        let (image, frames) = {
            let journal = self.links[dead as usize].journal.lock().expect("journal lock");
            if !journal.recoverable() {
                return Err("journal discarded".to_string());
            }
            (journal.base.image().clone(), journal.frames.clone())
        };
        let moved = self.admin_install(target, image)?;
        let link = &self.links[target as usize];
        link.replaying.store(true, Ordering::SeqCst);
        let replayed = self.replay_frames(target, &frames);
        link.replaying.store(false, Ordering::SeqCst);
        replayed?;
        if !link.alive.load(Ordering::SeqCst) {
            return Err(format!("backend {target} died during replay"));
        }
        // The flip: every partition the dead link served (exactly one,
        // by construction) now points at the promoted backend, and the
        // partition's trips resume normal delivery.
        {
            let mut map = self.map.write().expect("partition map");
            for slot in map.slots.iter_mut() {
                if *slot == dead {
                    *slot = target;
                }
            }
            map.epoch += 1;
        }
        {
            let trips = self.trips.read().expect("trips lock");
            for route in trips.values() {
                if route.backend.load(Ordering::Relaxed) == dead {
                    route.backend.store(target, Ordering::Relaxed);
                    route.replaying.store(false, Ordering::Relaxed);
                }
            }
        }
        // Barriers that were staged on the dead link get their answer
        // from the promoted backend: the replay fence already proved it
        // holds everything those barriers were waiting to cover.
        for &(kind, bid) in restage {
            let frame = match kind {
                BarrierKind::Flush => Request::Flush,
                BarrierKind::Snapshot => Request::SnapshotRequest,
                BarrierKind::Metrics => Request::MetricsRequest,
            };
            let _stage = link.stage.write().expect("stage lock");
            link.pending.push(PendingEntry::Barrier(kind, bid));
            if link.tx.send(BackendMsg::Forward(frame)).is_ok() {
                if matches!(kind, BarrierKind::Snapshot) {
                    link.journal.lock().expect("journal lock").break_chain();
                }
            } else {
                link.pending
                    .unstage_tail(|e| matches!(e, PendingEntry::Barrier(_, b) if *b == bid));
                self.contribute(bid, |b| {
                    b.failed.get_or_insert((
                        ErrorCode::EngineClosed,
                        format!("backend {target} connection lost"),
                    ));
                });
            }
        }
        Ok(moved)
    }

    /// Replays journaled ingest frames onto `target` in chunks, with a
    /// flush fence after each chunk so replay can never outrun the
    /// backend's bounded ingest queue (chunk size < queue capacity per
    /// shard). The frames are re-journaled as they go: the target's own
    /// journal stays faithful for a later failover of the failover.
    fn replay_frames(&self, target: u32, frames: &[Request]) -> Result<(), String> {
        let link = &self.links[target as usize];
        for chunk in frames.chunks(1024) {
            for req in chunk {
                let _stage = link.stage.read().expect("stage lock");
                let sent = link.tx.send(BackendMsg::Forward(req.clone())).is_ok();
                if !sent {
                    return Err(format!("backend {target} died during replay"));
                }
                link.journal.lock().expect("journal lock").record(req);
            }
            self.admin_fence(target)?;
        }
        Ok(())
    }

    /// Installs an image on a running backend and resets its journal to
    /// that exact state. Blocks for the `Installed` reply.
    fn admin_install(&self, target: u32, image: FleetImage) -> Result<u64, String> {
        let link = &self.links[target as usize];
        if !link.alive.load(Ordering::SeqCst) {
            return Err(format!("backend {target} is down"));
        }
        let (tx, rx) = sync_channel(1);
        {
            let _stage = link.stage.write().expect("stage lock");
            link.pending.push(PendingEntry::Install(tx));
            let blob = image_to_bytes(&image);
            if link.tx.send(BackendMsg::Forward(Request::Install { image: blob })).is_err() {
                link.pending.unstage_tail(|e| matches!(e, PendingEntry::Install(_)));
                return Err(format!("backend {target} is down"));
            }
            link.journal.lock().expect("journal lock").reset_to(image, self.journaling);
        }
        match rx.recv() {
            Ok(Ok(sessions)) => Ok(sessions),
            Ok(Err(detail)) => Err(detail),
            Err(_) => Err(format!("backend {target} connection lost")),
        }
    }

    /// Captures-and-removes every live session of a backend. Blocks for
    /// the `Drained` reply and returns the image blob.
    fn admin_drain(&self, source: u32) -> Result<Bytes, String> {
        let link = &self.links[source as usize];
        if !link.alive.load(Ordering::SeqCst) {
            return Err(format!("backend {source} is down"));
        }
        let (tx, rx) = sync_channel(1);
        {
            let _stage = link.stage.write().expect("stage lock");
            link.pending.push(PendingEntry::Drain(tx));
            if link.tx.send(BackendMsg::Forward(Request::Drain)).is_err() {
                link.pending.unstage_tail(|e| matches!(e, PendingEntry::Drain(_)));
                return Err(format!("backend {source} is down"));
            }
        }
        match rx.recv() {
            Ok(Ok(image)) => Ok(image),
            Ok(Err(detail)) => Err(detail),
            Err(_) => Err(format!("backend {source} connection lost")),
        }
    }

    /// A quiesce barrier whose reply feeds the recovery machinery
    /// instead of a front connection.
    fn admin_fence(&self, target: u32) -> Result<FleetSnapshot, String> {
        let link = &self.links[target as usize];
        if !link.alive.load(Ordering::SeqCst) {
            return Err(format!("backend {target} is down"));
        }
        let (tx, rx) = sync_channel(1);
        {
            let _stage = link.stage.write().expect("stage lock");
            link.pending.push(PendingEntry::Fence(tx));
            if link.tx.send(BackendMsg::Forward(Request::Flush)).is_err() {
                link.pending.unstage_tail(|e| matches!(e, PendingEntry::Fence(_)));
                return Err(format!("backend {target} is down"));
            }
        }
        match rx.recv() {
            Ok(Ok(stats)) => Ok(stats),
            Ok(Err(detail)) => Err(detail),
            Err(_) => Err(format!("backend {target} connection lost")),
        }
    }

    /// One link's turn in a checkpoint sweep: prefer a delta capture
    /// when the chain is armed, fall back to (and re-arm with) a full
    /// image capture.
    fn checkpoint_link(&self, idx: u32) -> Result<bool, String> {
        let armed = self.links[idx as usize].journal.lock().expect("journal lock").armed;
        if armed && self.capture(idx, true).is_ok() {
            return Ok(true);
        }
        self.capture(idx, false).map(|()| false)
    }

    /// One capture round-trip: stage the frame and the journal cut
    /// atomically (stage write lock), block for the reply, fold it into
    /// the journal. The cut is what ties the reply to a wire position:
    /// frames journaled before the capture frame are covered by the
    /// reply; frames after it are the new tail.
    fn capture(&self, idx: u32, delta: bool) -> Result<(), String> {
        let link = &self.links[idx as usize];
        if !link.alive.load(Ordering::SeqCst) {
            return Err(format!("backend {idx} is down"));
        }
        let (tx, rx) = sync_channel(1);
        let breaks_at_stage = {
            let _stage = link.stage.write().expect("stage lock");
            let mut journal = link.journal.lock().expect("journal lock");
            link.pending.push(PendingEntry::Checkpoint(tx));
            let frame = if delta { Request::DeltaRequest } else { Request::SnapshotRequest };
            if link.tx.send(BackendMsg::Forward(frame)).is_err() {
                link.pending.unstage_tail(|e| matches!(e, PendingEntry::Checkpoint(_)));
                return Err(format!("backend {idx} is down"));
            }
            journal.stage_cut(self.journaling);
            journal.chain_breaks
        };
        let reply = match rx.recv() {
            Ok(Ok(reply)) => reply,
            Ok(Err(detail)) => {
                link.journal.lock().expect("journal lock").abort_cut();
                return Err(detail);
            }
            Err(_) => {
                link.journal.lock().expect("journal lock").abort_cut();
                return Err(format!("backend {idx} connection lost"));
            }
        };
        let _stage = link.stage.write().expect("stage lock");
        let mut journal = link.journal.lock().expect("journal lock");
        match reply {
            CaptureReply::Full(blob) => match image_from_bytes(blob) {
                Ok(image) => {
                    journal.apply_full(image, breaks_at_stage);
                    Ok(())
                }
                Err(e) => {
                    journal.abort_cut();
                    Err(format!("backend {idx} snapshot undecodable: {e}"))
                }
            },
            CaptureReply::Delta(blob) => {
                let applied = journal.apply_delta(blob);
                if applied.is_err() {
                    journal.abort_cut();
                }
                applied
            }
        }
    }

    /// Moves one partition's live sessions onto a standby. Caller holds
    /// the admin lock and the topology gate (write).
    fn handoff_inner(&self, partition: u32) -> Result<HandoffStats, RouterAdminError> {
        let source = {
            let map = self.map.read().expect("partition map");
            let partitions = map.slots.len() as u32;
            if partition >= partitions {
                return Err(RouterAdminError::NoSuchPartition { partition, partitions });
            }
            map.slots[partition as usize]
        };
        let target = self.take_standby().ok_or(RouterAdminError::NoStandby)?;
        let blob = self
            .admin_drain(source)
            .map_err(|detail| RouterAdminError::Backend { backend: source, detail })?;
        let image = image_from_bytes(blob.clone()).map_err(|e| RouterAdminError::Backend {
            backend: source,
            detail: format!("drained image undecodable: {e}"),
        })?;
        let moved = match self.admin_install(target, image) {
            Ok(moved) => moved,
            Err(detail) => {
                // Put the sessions back where they came from (the source
                // is still running — it answered the drain) and return
                // the suspect target to nobody: it is dead or broken.
                if let Ok(image) = image_from_bytes(blob) {
                    let _ = self.admin_install(source, image);
                }
                return Err(RouterAdminError::Backend { backend: target, detail });
            }
        };
        let epoch = {
            let mut map = self.map.write().expect("partition map");
            map.slots[partition as usize] = target;
            map.epoch += 1;
            map.epoch
        };
        {
            let trips = self.trips.read().expect("trips lock");
            for route in trips.values() {
                if route.backend.load(Ordering::Relaxed) == source {
                    route.backend.store(target, Ordering::Relaxed);
                }
            }
        }
        // The freed source is empty now: reset its journal and return it
        // to the pool as a future failover/handoff target.
        self.links[source as usize]
            .journal
            .lock()
            .expect("journal lock")
            .reset_to(FleetImage::default(), self.journaling);
        self.standbys.lock().expect("standby pool").push(source);
        self.metrics.handoff_sessions.add(moved);
        Ok(HandoffStats { sessions_moved: moved, epoch })
    }

    /// Re-partitions the whole fleet onto `m` backends. Caller holds the
    /// admin lock and the topology gate (write).
    fn rebalance_inner(&self, m: u32) -> Result<HandoffStats, RouterAdminError> {
        if m == 0 {
            return Err(RouterAdminError::InvalidTopology("cannot rebalance to zero partitions"));
        }
        let m_us = m as usize;
        let actives: Vec<u32> = {
            let map = self.map.read().expect("partition map");
            map.slots
                .iter()
                .copied()
                .filter(|&idx| self.links[idx as usize].alive.load(Ordering::SeqCst))
                .collect()
        };
        let mut new_links = actives.clone();
        let mut borrowed: Vec<u32> = Vec::new();
        if new_links.len() >= m_us {
            new_links.truncate(m_us);
        } else {
            while new_links.len() < m_us {
                match self.take_standby() {
                    Some(idx) => {
                        borrowed.push(idx);
                        new_links.push(idx);
                    }
                    None => {
                        let mut pool = self.standbys.lock().expect("standby pool");
                        pool.extend(borrowed);
                        return Err(RouterAdminError::NoStandby);
                    }
                }
            }
        }
        // Drain every live active. On failure, reinstall what was
        // already drained so no sessions are stranded in router memory.
        let mut drained: Vec<(u32, Bytes)> = Vec::new();
        for &src in &actives {
            match self.admin_drain(src) {
                Ok(blob) => drained.push((src, blob)),
                Err(detail) => {
                    for (s, blob) in drained {
                        if let Ok(image) = image_from_bytes(blob) {
                            let _ = self.admin_install(s, image);
                        }
                    }
                    let mut pool = self.standbys.lock().expect("standby pool");
                    pool.extend(borrowed);
                    return Err(RouterAdminError::Backend { backend: src, detail });
                }
            }
        }
        let mut parts = Vec::with_capacity(drained.len());
        for (src, blob) in &drained {
            match image_from_bytes(blob.clone()) {
                Ok(image) => parts.push(image),
                Err(e) => {
                    let src = *src;
                    for (s, blob) in drained {
                        if let Ok(image) = image_from_bytes(blob) {
                            let _ = self.admin_install(s, image);
                        }
                    }
                    let mut pool = self.standbys.lock().expect("standby pool");
                    pool.extend(borrowed);
                    return Err(RouterAdminError::Backend {
                        backend: src,
                        detail: format!("drained image undecodable: {e}"),
                    });
                }
            }
        }
        let split = split_image(FleetImage::merge(parts), m);
        let mut moved = 0u64;
        for (slot, part) in split.into_iter().enumerate() {
            let target = new_links[slot];
            moved += self
                .admin_install(target, part)
                .map_err(|detail| RouterAdminError::Backend { backend: target, detail })?;
        }
        let epoch = {
            let mut map = self.map.write().expect("partition map");
            map.slots = new_links.clone();
            map.epoch += 1;
            map.epoch
        };
        {
            let trips = self.trips.read().expect("trips lock");
            for (id, route) in trips.iter() {
                let slot = backend_for(*id, m) as usize;
                route.backend.store(new_links[slot], Ordering::Relaxed);
            }
        }
        for &src in &actives {
            if !new_links.contains(&src) {
                self.links[src as usize]
                    .journal
                    .lock()
                    .expect("journal lock")
                    .reset_to(FleetImage::default(), self.journaling);
                self.standbys.lock().expect("standby pool").push(src);
            }
        }
        self.metrics.handoff_sessions.add(moved);
        Ok(HandoffStats { sessions_moved: moved, epoch })
    }

    fn barrier_open(&self, kind: BarrierKind, conn: u64) -> u64 {
        let bid = self.next_barrier.fetch_add(1, Ordering::Relaxed);
        let in_flight = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            barriers.insert(
                bid,
                Barrier {
                    kind,
                    conn,
                    sealed: false,
                    expected: 0,
                    got: 0,
                    stats: Vec::new(),
                    images: Vec::new(),
                    metrics: Vec::new(),
                    failed: None,
                },
            );
            barriers.len() as u64
        };
        self.metrics.fanin_depth.record(in_flight);
        bid
    }

    /// The fan-out loop finished: `expected` backends accepted the
    /// barrier frame. Completes the barrier if every contribution already
    /// arrived in the meantime.
    fn barrier_seal(&self, bid: u64, expected: usize) {
        let done = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            let Some(b) = barriers.get_mut(&bid) else { return };
            b.sealed = true;
            b.expected = expected;
            if b.got >= expected {
                barriers.remove(&bid)
            } else {
                None
            }
        };
        if let Some(b) = done {
            self.finalize(b);
        }
    }

    fn barrier_abort(&self, bid: u64) {
        self.barriers.lock().expect("barriers lock").remove(&bid);
    }

    /// Records one backend's contribution (a reply or a failure) and
    /// completes the barrier once all expected backends answered.
    fn contribute(&self, bid: u64, apply: impl FnOnce(&mut Barrier)) {
        let done = {
            let mut barriers = self.barriers.lock().expect("barriers lock");
            let Some(b) = barriers.get_mut(&bid) else { return };
            apply(b);
            b.got += 1;
            if b.sealed && b.got >= b.expected {
                barriers.remove(&bid)
            } else {
                None
            }
        };
        if let Some(b) = done {
            self.finalize(b);
        }
    }

    /// Builds and delivers a completed barrier's reply. Runs outside the
    /// barrier lock, on whichever backend reader (or front handler)
    /// supplied the last contribution.
    fn finalize(&self, barrier: Barrier) {
        let resp = if let Some((code, detail)) = barrier.failed {
            Response::Error { code, trip: None, retry_after_ms: None, detail }
        } else {
            match barrier.kind {
                BarrierKind::Flush => Response::Stats(FleetSnapshot::merged(&barrier.stats)),
                BarrierKind::Snapshot => {
                    // Canonical backend order, so the merged blob is
                    // deterministic whatever order the replies landed in.
                    let mut parts = barrier.images;
                    parts.sort_by_key(|&(idx, _)| idx);
                    let mut images = Vec::with_capacity(parts.len());
                    let mut bad = None;
                    for (idx, blob) in parts {
                        match image_from_bytes(blob) {
                            Ok(image) => images.push(image),
                            Err(e) => {
                                bad = Some(format!("backend {idx} snapshot undecodable: {e}"));
                                break;
                            }
                        }
                    }
                    match bad {
                        Some(detail) => Response::Error {
                            code: ErrorCode::SnapshotFailed,
                            trip: None,
                            retry_after_ms: None,
                            detail,
                        },
                        None => {
                            Response::Snapshot { image: image_to_bytes(&FleetImage::merge(images)) }
                        }
                    }
                }
                BarrierKind::Metrics => {
                    // Fleet view = every backend's registry plus the
                    // router's own `router.*` metrics, merged entry-wise —
                    // the same discipline as `FleetSnapshot::merged` for
                    // `Stats`. Merge order is irrelevant: entries are
                    // keyed by `(name, kind)` and counts add.
                    let mut parts = barrier.metrics;
                    parts.push(self.metrics.registry.snapshot());
                    Response::Metrics(MetricsSnapshot::merged(&parts))
                }
            }
        };
        self.deliver_conn(barrier.conn, resp);
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            fronts_accepted: self.fronts_accepted.load(Ordering::Relaxed),
            fronts_open: self.fronts.read().expect("fronts lock").len() as u64,
            responses_dropped: self.responses_dropped.load(Ordering::Relaxed),
            backends_total: self.links.len() as u64,
            backends_alive: self.links.iter().filter(|l| l.alive.load(Ordering::SeqCst)).count()
                as u64,
            standbys_available: self.standbys.lock().expect("standby pool").len() as u64,
            failovers: self.failovers.load(Ordering::Relaxed),
            last_recovery_micros: self.last_recovery_micros.load(Ordering::Relaxed),
            partition_epoch: self.map.read().expect("partition map").epoch,
        }
    }
}

/// Whether the front connection should stay open after a request.
enum After {
    Continue,
    Close,
}

fn backend_down_error(id: TripId, backend: u32) -> Response {
    Response::Error {
        code: ErrorCode::EngineClosed,
        trip: Some(id),
        retry_after_ms: None,
        detail: format!("backend {backend} is down"),
    }
}

fn handle_front(core: &Core, conn_id: u64, tx: &SyncSender<Response>, req: Request) -> After {
    match req {
        Request::Flush => handle_barrier(core, conn_id, tx, BarrierKind::Flush, Request::Flush),
        Request::SnapshotRequest => {
            handle_barrier(core, conn_id, tx, BarrierKind::Snapshot, Request::SnapshotRequest)
        }
        Request::MetricsRequest => {
            handle_barrier(core, conn_id, tx, BarrierKind::Metrics, Request::MetricsRequest)
        }
        Request::DeltaRequest | Request::Install { .. } | Request::Drain => {
            // Availability-tier admin frames are point-to-point router↔
            // backend operations; there is no meaningful fleet-wide
            // semantics for them at the front door, so they fail typed
            // instead of being misrouted.
            let _ = tx.try_send(Response::Error {
                code: ErrorCode::Rejected,
                trip: None,
                retry_after_ms: None,
                detail: "admin frame is not routable through the router front door".to_string(),
            });
            After::Continue
        }
        ingest => {
            let (id, is_start) = match &ingest {
                Request::TripStart { id, .. } => (*id, true),
                Request::Segment { id, .. } => (*id, false),
                Request::TripEnd { id } => (*id, false),
                _ => unreachable!("barrier and admin frames are handled above"),
            };
            forward_ingest(core, conn_id, tx, id, is_start, ingest)
        }
    }
}

/// Routes one ingest frame through the partition map. With standbys the
/// frame *rides out* a failover: it blocks at the topology gate while a
/// promotion is in progress and retries against the flipped map, for up
/// to `failover_wait` — producers see a pause, not an error. Without
/// standbys a dead backend answers immediately with a typed error (the
/// original contract).
fn forward_ingest(
    core: &Core,
    conn_id: u64,
    tx: &SyncSender<Response>,
    id: TripId,
    is_start: bool,
    req: Request,
) -> After {
    let deadline = if core.journaling { Some(Instant::now() + core.failover_wait) } else { None };
    let mut claimed = false;
    let mut bumped = false;
    loop {
        // One routing pass under the shared gate: resolve the map, do
        // the route bookkeeping, send. A failover/handoff holding the
        // gate exclusively blocks us here until its map flip.
        let _gate = core.gate.read().expect("topology gate");
        let link_idx = {
            let map = core.map.read().expect("partition map");
            map.slots[backend_for(id, map.slots.len() as u32) as usize]
        };
        let link = &core.links[link_idx as usize];
        if !link.alive.load(Ordering::SeqCst) {
            drop(_gate);
            if retry_wait(deadline) {
                continue;
            }
            release_claim(core, conn_id, id, claimed);
            let _ = tx.try_send(backend_down_error(id, link_idx));
            return After::Continue;
        }
        if is_start {
            if claimed {
                // Retry pass: the claim exists, refresh its link.
                let trips = core.trips.read().expect("trips lock");
                if let Some(route) = trips.get(&id) {
                    route.backend.store(link_idx, Ordering::Relaxed);
                }
            } else {
                let mut trips = core.trips.write().expect("trips lock");
                match trips.entry(id) {
                    Entry::Occupied(_) => {
                        drop(trips);
                        // Another live connection owns this trip; duplicate
                        // starts on the same connection are also refused
                        // (the backend engine would reject them anyway).
                        let _ = tx.try_send(Response::Error {
                            code: ErrorCode::Rejected,
                            trip: Some(id),
                            retry_after_ms: None,
                            detail: "trip id is owned by a live session".to_string(),
                        });
                        return After::Continue;
                    }
                    Entry::Vacant(v) => {
                        v.insert(TripRoute::new(conn_id, link_idx));
                        claimed = true;
                    }
                }
            }
        } else {
            // The hot path: an existing route needs only a read lock plus
            // an atomic bump. The write-lock insert below is the lazy
            // re-attach after a routed warm restart — the restored backend
            // already holds the session, so no TripStart will ever arrive
            // and the first connection to stream for the trip becomes its
            // response route (mirrors the single-server behaviour in
            // tad-net).
            let hit = {
                let trips = core.trips.read().expect("trips lock");
                match trips.get(&id) {
                    Some(route) => {
                        if !bumped {
                            route.forwarded.fetch_add(1, Ordering::Relaxed);
                            bumped = true;
                        }
                        route.backend.store(link_idx, Ordering::Relaxed);
                        true
                    }
                    None => false,
                }
            };
            if !hit {
                let mut trips = core.trips.write().expect("trips lock");
                let route = trips.entry(id).or_insert_with(|| TripRoute::new(conn_id, link_idx));
                if !bumped {
                    route.forwarded.fetch_add(1, Ordering::Relaxed);
                    bumped = true;
                }
                route.backend.store(link_idx, Ordering::Relaxed);
            }
        }
        let forward_started = Instant::now();
        // Journaled send: the stage read-lock makes the send+record pair
        // atomic against a checkpoint cut (which takes the write lock),
        // so a cut position always corresponds to an exact wire prefix.
        // Cross-trip record order may differ from wire order — harmless,
        // replay only needs per-trip order, and each trip's frames come
        // from one front reader thread.
        let sent = if core.journaling {
            let _stage = link.stage.read().expect("stage lock");
            let ok = link.tx.send(BackendMsg::Forward(req.clone())).is_ok();
            if ok {
                link.journal.lock().expect("journal lock").record(&req);
            }
            ok
        } else {
            link.tx.send(BackendMsg::Forward(req.clone())).is_ok()
        };
        if sent {
            // Channel-accept latency: near zero when the backend writer
            // keeps up, the queue-wait time when it saturates.
            let ns = forward_started.elapsed().as_nanos() as u64;
            core.metrics.forward_ns.record(ns);
            core.metrics.per_backend[link_idx as usize].record(ns);
            return After::Continue;
        }
        drop(_gate);
        if retry_wait(deadline) {
            continue;
        }
        release_claim(core, conn_id, id, claimed);
        let _ = tx.try_send(backend_down_error(id, link_idx));
        return After::Continue;
    }
}

/// Brief backoff between forwarding retries while a backend death has
/// been detected but its failover has not engaged the gate yet. Returns
/// false once the deadline passed (or there never was one).
fn retry_wait(deadline: Option<Instant>) -> bool {
    match deadline {
        Some(deadline) if Instant::now() < deadline => {
            std::thread::sleep(Duration::from_millis(2));
            true
        }
        _ => false,
    }
}

/// Releases a start-only claim created by a forwarding attempt that
/// ultimately failed, so the producer can retry the TripStart.
fn release_claim(core: &Core, conn_id: u64, id: TripId, claimed: bool) {
    if !claimed {
        return;
    }
    let mut trips = core.trips.write().expect("trips lock");
    if trips.get(&id).is_some_and(|r| r.conn == conn_id && r.forwarded.load(Ordering::Relaxed) == 0)
    {
        trips.remove(&id);
    }
}

fn handle_barrier(
    core: &Core,
    conn_id: u64,
    tx: &SyncSender<Response>,
    kind: BarrierKind,
    req: Request,
) -> After {
    // The shared gate spans the whole fan-out: a concurrent handoff
    // cannot drain a backend between this barrier's send to it and the
    // map flip, so a snapshot barrier always sees every session exactly
    // once (all on the old topology, or all on the new one).
    let _gate = core.gate.read().expect("topology gate");
    let bid = core.barrier_open(kind, conn_id);
    let slots: Vec<u32> = core.map.read().expect("partition map").slots.clone();
    let mut sent = 0usize;
    for idx in slots {
        let link = &core.links[idx as usize];
        if !link.alive.load(Ordering::SeqCst) {
            continue;
        }
        // Stage-then-send, atomically with respect to other admin frames
        // on this link (the stage write lock): pending-queue order
        // therefore equals channel order equals wire order, and the
        // barrier is in the queue from the moment the channel accepts it —
        // so the backend-down sweep (run by whichever of the link's
        // threads exits first) always sees it and can fail or restage it.
        // Forwarded ingest frames interleave freely; only admin-to-admin
        // order matters for the queue.
        let _stage = link.stage.write().expect("stage lock");
        link.pending.push(PendingEntry::Barrier(kind, bid));
        if link.tx.send(BackendMsg::Forward(req.clone())).is_ok() {
            sent += 1;
            if matches!(kind, BarrierKind::Snapshot) {
                // The backend answers a SnapshotRequest by re-arming its
                // delta chain at an epoch the router never learns: the
                // journal's chain linkage is broken until the next full
                // capture.
                link.journal.lock().expect("journal lock").break_chain();
            }
        } else {
            // The writer is gone; undo the stage. Nobody staged after us
            // (we hold the stage lock), so the entry — if the down sweep
            // has not already consumed it and failed the barrier — is the
            // tail.
            link.pending.unstage_tail(|e| matches!(e, PendingEntry::Barrier(_, b) if *b == bid));
        }
    }
    if sent == 0 {
        // No live backend accepted the frame: drop the barrier (a down
        // sweep racing the loop may have contributed a failure to it, but
        // never finalized it — it was not sealed) and answer directly.
        core.barrier_abort(bid);
        let _ = tx.try_send(Response::Error {
            code: ErrorCode::EngineClosed,
            trip: None,
            retry_after_ms: None,
            detail: "no live backends".to_string(),
        });
        return After::Close;
    }
    core.barrier_seal(bid, sent);
    After::Continue
}

/// Drains a front connection's response queue to its socket, batching
/// writes between flushes (same shape as `tad-net`'s connection writer).
fn front_writer(rx: Receiver<Response>, stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    'serve: while let Ok(resp) = rx.recv() {
        if write_response(&mut w, &resp).is_err() {
            break;
        }
        loop {
            match rx.try_recv() {
                Ok(resp) => {
                    if write_response(&mut w, &resp).is_err() {
                        break 'serve;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let _ = std::io::Write::flush(&mut w);
                    return;
                }
            }
        }
        if std::io::Write::flush(&mut w).is_err() {
            break;
        }
    }
    let _ = std::io::Write::flush(&mut w);
}

fn front_reader(
    mut stream: TcpStream,
    core: Arc<Core>,
    max_frame_len: usize,
    conn_id: u64,
    tx: SyncSender<Response>,
) {
    loop {
        match read_request(&mut stream, max_frame_len) {
            Ok(None) => break, // clean disconnect
            Ok(Some(req)) => {
                if let After::Close = handle_front(&core, conn_id, &tx, req) {
                    break;
                }
            }
            Err(RecvError::Io(_)) => break,
            Err(RecvError::Frame(e)) => {
                // Framing is lost; tell the peer why, then hang up.
                let _ = tx.send(Response::Error {
                    code: ErrorCode::BadFrame,
                    trip: None,
                    retry_after_ms: None,
                    detail: e.to_string(),
                });
                break;
            }
        }
    }
    core.unregister_front(conn_id);
}

fn accept_loop(
    listener: TcpListener,
    core: Arc<Core>,
    cfg: RouterConfig,
    shutdown: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if cfg.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let conn_id = next_conn;
        next_conn += 1;
        let (tx, rx) = sync_channel::<Response>(cfg.response_queue);
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let registry_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        core.register_front(conn_id, FrontHandle { tx: tx.clone(), stream: registry_half });
        let writer = std::thread::Builder::new()
            .name(format!("tad-router-conn-{conn_id}-w"))
            .spawn(move || front_writer(rx, write_half))
            .expect("spawn front writer");
        let reader = {
            let core = Arc::clone(&core);
            let max = cfg.max_frame_len;
            std::thread::Builder::new()
                .name(format!("tad-router-conn-{conn_id}"))
                .spawn(move || front_reader(stream, core, max, conn_id, tx))
                .expect("spawn front reader")
        };
        let mut threads = threads.lock().expect("threads lock");
        threads.push(writer);
        threads.push(reader);
    }
}

/// Builder for [`RouterServer`]; start from [`RouterServer::builder`].
pub struct RouterServerBuilder {
    backends: Vec<SocketAddr>,
    standbys: Vec<SocketAddr>,
    cfg: RouterConfig,
}

impl RouterServerBuilder {
    /// Adds one active backend `tad-net` server address. Active order is
    /// the initial partition order — it determines the trip
    /// partitioning, so a restarted router must list the same backends
    /// in the same order.
    pub fn backend(mut self, addr: SocketAddr) -> Self {
        self.backends.push(addr);
        self
    }

    /// Adds several active backend addresses at once (see
    /// [`Self::backend`]).
    pub fn backends(mut self, addrs: impl IntoIterator<Item = SocketAddr>) -> Self {
        self.backends.extend(addrs);
        self
    }

    /// Adds one standby backend: a running, empty `tad-net` server that
    /// serves no partition until a failover promotes it or a handoff
    /// targets it. Adding at least one standby turns on the whole
    /// availability tier (recovery journals, failover, ingest
    /// ride-through).
    pub fn standby(mut self, addr: SocketAddr) -> Self {
        self.standbys.push(addr);
        self
    }

    /// Adds several standby addresses at once (see [`Self::standby`]).
    pub fn standbys(mut self, addrs: impl IntoIterator<Item = SocketAddr>) -> Self {
        self.standbys.extend(addrs);
        self
    }

    /// Overrides the router tunables.
    pub fn config(mut self, cfg: RouterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Connects to every backend (actives, then standbys), binds the
    /// front listening socket, and starts the acceptor and per-backend
    /// pipeline threads.
    ///
    /// # Errors
    /// [`RouterError::NoBackends`] when no active backend address was
    /// given, [`RouterError::BackendConnect`] when a backend cannot be
    /// reached, and [`RouterError::Io`] when the front socket cannot be
    /// bound.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<RouterServer, RouterError> {
        let RouterServerBuilder { backends, standbys, cfg } = self;
        if backends.is_empty() {
            return Err(RouterError::NoBackends);
        }
        let actives = backends.len();
        let journaling = !standbys.is_empty();
        let listener = TcpListener::bind(addr)?;
        tad_net::widen_accept_backlog(&listener, cfg.accept_backlog);
        let local_addr = listener.local_addr()?;

        let all: Vec<SocketAddr> = backends.into_iter().chain(standbys).collect();
        let source = PollSource::new()?;
        let mut links = Vec::with_capacity(all.len());
        let mut mux_links = Vec::with_capacity(all.len());
        for (index, &backend_addr) in all.iter().enumerate() {
            let connect = |error| RouterError::BackendConnect { index, error };
            let stream = TcpStream::connect(backend_addr).map_err(connect)?;
            if cfg.nodelay {
                let _ = stream.set_nodelay(true);
            }
            // The mux drives this socket through readiness, never a
            // blocking call; the BackendLink keeps a clone purely for
            // shutdown wake-ups (shutdown reaches the shared socket).
            stream.set_nonblocking(true).map_err(connect)?;
            let shutdown_handle = stream.try_clone().map_err(connect)?;
            let (tx, rx) = sync_channel::<BackendMsg>(cfg.backend_queue);
            let armed = Arc::new(AtomicBool::new(false));
            mux_links.push(MuxLink { rx, armed: Arc::clone(&armed), stream });
            links.push(BackendLink {
                alive: AtomicBool::new(true),
                tx: LinkSender::new(tx, armed, source.waker()),
                pending: Pending::default(),
                stage: RwLock::new(()),
                journal: Mutex::new(Journal::new(cfg.journal_limit, journaling)),
                replaying: AtomicBool::new(false),
                down_handled: AtomicBool::new(false),
                stream: shutdown_handle,
            });
        }

        // One readiness-driven mux thread owns every backend socket: it
        // drains the forwarding channels, flushes per-link write buffers,
        // reassembles response frames, and runs the idempotent
        // backend-down sweep when a link dies — so a failing link always
        // fails (or fails over) staged work instead of leaving it
        // pending, while the other links keep flowing.
        let core = Arc::new(Core::new(links, actives, &cfg));
        let mux_core = Arc::clone(&core);
        let max = cfg.max_frame_len;
        let backend_threads = vec![std::thread::Builder::new()
            .name("tad-router-backend-mux".to_string())
            .spawn(move || backend_mux(source, mux_links, mux_core, max))
            .expect("spawn backend mux")];

        let shutdown = Arc::new(AtomicBool::new(false));
        let front_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let front_threads = Arc::clone(&front_threads);
            std::thread::Builder::new()
                .name("tad-router-acceptor".to_string())
                .spawn(move || accept_loop(listener, core, cfg, shutdown, front_threads))
                .expect("spawn acceptor")
        };

        Ok(RouterServer {
            core,
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            front_threads,
            backend_threads,
        })
    }
}

/// A running router tier: a `TADN` front door hash-partitioning trips
/// across N `tad-net` backends, with optional standbys behind a
/// self-healing availability tier. Construct with
/// [`RouterServer::builder`]; see the module docs for data flow,
/// stickiness, barrier, and failover semantics. Producers connect with
/// the unmodified [`tad_net::Client`] — the router is wire-compatible
/// with a single backend.
pub struct RouterServer {
    core: Arc<Core>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    front_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    backend_threads: Vec<JoinHandle<()>>,
}

impl RouterServer {
    /// Starts building a router. Add backends with
    /// [`RouterServerBuilder::backend`] (and optionally
    /// [`RouterServerBuilder::standby`]), then
    /// [`RouterServerBuilder::bind`] the front door (port 0 lets the OS
    /// pick; read it back with [`RouterServer::local_addr`]).
    pub fn builder() -> RouterServerBuilder {
        RouterServerBuilder {
            backends: Vec::new(),
            standbys: Vec::new(),
            cfg: RouterConfig::default(),
        }
    }

    /// The address the front door is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many partitions the map currently has (the `N` of
    /// [`crate::backend_for`]). Constant under failover and handoff;
    /// changed only by [`RouterServer::rebalance`].
    pub fn num_backends(&self) -> usize {
        self.core.map.read().expect("partition map").slots.len()
    }

    /// How many backend links the router was built over, actives plus
    /// standbys.
    pub fn num_links(&self) -> usize {
        self.core.links.len()
    }

    /// Point-in-time router counters.
    pub fn stats(&self) -> RouterStats {
        self.core.stats()
    }

    /// Snapshot of the router's *own* metrics (`router.forward_ns`,
    /// `router.fanin_depth`, `router.failovers`,
    /// `router.handoff_sessions`, `router.replay_suppressed`,
    /// `router.recovery_micros`, `router.throttled`,
    /// `router.backend.N.forward_ns`, `router.backend.N.throttled`). The
    /// fleet-wide view — these merged with every live backend's snapshot
    /// — is what a front connection gets from
    /// [`tad_net::Client::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.registry.snapshot()
    }

    /// Runs one checkpoint sweep over every mapped backend: capture its
    /// state (a cheap `TADD` delta of the churn since the last sweep
    /// when possible, a full `TADF` image otherwise) and re-base its
    /// recovery journal at the capture's wire position. Call this
    /// periodically; between sweeps the journal records forwarded
    /// frames, and a backend that dies is restored from
    /// `checkpoint base + journaled tail`, bit-identically.
    ///
    /// # Errors
    /// [`RouterAdminError::Backend`] naming the first backend whose
    /// capture failed; already-captured backends keep their new base.
    pub fn checkpoint(&self) -> Result<CheckpointStats, RouterAdminError> {
        let core = &self.core;
        let _admin = core.admin.lock().expect("admin lock");
        // Shared gate: wait out an in-flight failover, then capture on
        // the settled map.
        let _gate = core.gate.read().expect("topology gate");
        let slots: Vec<u32> = core.map.read().expect("partition map").slots.clone();
        let mut stats = CheckpointStats::default();
        for idx in slots {
            match core.checkpoint_link(idx) {
                Ok(true) => stats.delta_captures += 1,
                Ok(false) => stats.full_captures += 1,
                Err(detail) => {
                    return Err(RouterAdminError::Backend { backend: idx, detail });
                }
            }
        }
        Ok(stats)
    }

    /// Migrates one partition's live sessions from the backend currently
    /// serving it onto a standby, invisibly to producers: in-flight
    /// frames are held at the topology gate, the source is drained (no
    /// completions fire), the sessions are installed on the standby, and
    /// the map flips. The freed source becomes a standby itself, so
    /// repeated handoffs rotate through the fleet.
    ///
    /// # Errors
    /// [`RouterAdminError::NoSuchPartition`] for an out-of-range
    /// partition, [`RouterAdminError::NoStandby`] when the pool is
    /// empty, and [`RouterAdminError::Backend`] when the drain or
    /// install fails (a failed install re-installs the drained sessions
    /// back onto the source, best-effort).
    pub fn handoff(&self, partition: u32) -> Result<HandoffStats, RouterAdminError> {
        let core = &self.core;
        let _admin = core.admin.lock().expect("admin lock");
        let _gate = core.gate.write().expect("topology gate");
        core.handoff_inner(partition)
    }

    /// Re-partitions the whole fleet onto `num_active` backends: every
    /// live mapped backend is drained, the sessions are merged and
    /// re-split with [`crate::split_image`] for the new partition count,
    /// and each part is installed on its new home (grown fleets pull
    /// standbys in; shrunk fleets return freed backends to the pool).
    /// Producers are held at the gate throughout and resume against the
    /// new map — scoring continues bit-identically.
    ///
    /// # Errors
    /// [`RouterAdminError::InvalidTopology`] for zero partitions,
    /// [`RouterAdminError::NoStandby`] when growing past the pool, and
    /// [`RouterAdminError::Backend`] when a drain or install fails
    /// (drained sessions are re-installed onto their sources,
    /// best-effort, when the operation aborts before any install).
    pub fn rebalance(&self, num_active: u32) -> Result<HandoffStats, RouterAdminError> {
        let core = &self.core;
        let _admin = core.admin.lock().expect("admin lock");
        let _gate = core.gate.write().expect("topology gate");
        core.rebalance_inner(num_active)
    }

    /// Stops accepting, closes every front connection and backend link,
    /// joins all threads, and returns the final router counters. The
    /// backends themselves keep running — they are independent servers.
    pub fn shutdown(mut self) -> RouterStats {
        let stats = self.stats();
        self.stop();
        stats
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // From here on, backend deaths must not spawn recovery threads:
        // the links are about to be torn down deliberately.
        self.core.closing.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it re-checks the flag per iteration.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.core.fronts.read().expect("fronts lock").values() {
            let _ = handle.stream.shutdown(Shutdown::Both);
        }
        let handles = std::mem::take(&mut *self.front_threads.lock().expect("threads lock"));
        for handle in handles {
            let _ = handle.join();
        }
        for link in &self.core.links {
            // Orderly writer exit, then wake the (possibly blocked) reader.
            let _ = link.tx.send(BackendMsg::Close);
            let _ = link.stream.shutdown(Shutdown::Both);
        }
        for handle in std::mem::take(&mut self.backend_threads) {
            let _ = handle.join();
        }
        // Recovery threads last: closing the links above failed any
        // reply they were still blocked on, so they are guaranteed to
        // finish.
        let recovery =
            std::mem::take(&mut *self.core.recovery_threads.lock().expect("recovery threads"));
        for handle in recovery {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}
