//! The router's backend side: one pipelined TCP connection per `tad-net`
//! backend, all of them owned by a single readiness-driven mux thread
//! built from the same event-loop primitives as the `tad-net` server
//! ([`tad_net::Conn`] + [`tad_net::PollSource`]). Each link keeps a
//! bounded forwarding channel; senders arm a per-link flag and wake the
//! poller, and the mux drains channels into per-link write buffers,
//! flushes them as sockets accept bytes, and reassembles response frames
//! incrementally as backends answer.
//!
//! Ordering is the load-bearing property. All router traffic to one
//! backend travels a single connection, fed by a single bounded channel
//! drained in FIFO order by the mux — so the order in which frames enter
//! the channel is the order they hit the backend's socket, and the
//! backend answers admin frames in that same order on the same
//! connection. Every request that expects a trip-less reply — a front
//! barrier (`Flush` / `SnapshotRequest` / `MetricsRequest`), a
//! router-driven checkpoint capture, an `Install`, a `Drain`, or a replay
//! fence — is staged as a [`PendingEntry`] in the link's single pending
//! queue *atomically with* the channel send (under the link's stage
//! lock), so queue order always equals wire order and the head of the
//! queue is always the request the backend's next trip-less reply
//! answers. Crucially, an entry is in the queue from the moment its frame
//! is accepted: any link death observed by the mux (read EOF, a framing
//! fault, a write failure, or an orderly `Close`) runs the backend-down
//! sweep and drains every staged entry, so no caller can wait forever on
//! a reply that will never come.
//!
//! Backpressure is two-stage: the mux stops draining a link's channel
//! once that link's write backlog crosses a high-water mark, the bounded
//! channel then fills, and `send` finally blocks the *producer* (a front
//! reader or replay thread) — exactly the old per-link writer-thread
//! behaviour, without the threads. One stalled backend never blocks the
//! mux itself: its frames wait in its own buffer/channel while other
//! links keep flowing.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SendError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use tad_net::{
    request_to_bytes, response_from_bytes, Conn, EventSource, Interest, PollSource, PollWaker,
    ReadStatus, Request,
};
use tad_serve::FleetSnapshot;

use crate::server::{BarrierKind, Core};

/// Per-link, per-tick cap on bytes decoded from a backend, so one
/// snapshot-sized reply burst cannot starve the other links' reads.
const READ_BUDGET: usize = 1 << 20;

/// Stop draining a link's channel once this many bytes sit unflushed in
/// its write buffer; the bounded channel behind it then provides the
/// blocking backpressure to producers.
const WRITE_HIGHWATER: usize = 1 << 20;

/// One frame bound for a backend, queued behind the backend's mux link.
pub(crate) enum BackendMsg {
    /// A frame forwarded verbatim (ingest or a staged admin frame; the
    /// sender stages pending entries, not the mux).
    Forward(Request),
    /// Orderly shutdown: flush what is buffered and close the link.
    Close,
}

/// The sending half of a backend link's forwarding channel: a bounded
/// channel send plus a poller wake, so the mux learns about new frames
/// without spinning. The armed flag dedups wakes — one notify covers any
/// number of sends between mux ticks.
pub(crate) struct LinkSender {
    tx: SyncSender<BackendMsg>,
    armed: Arc<AtomicBool>,
    waker: PollWaker,
}

impl LinkSender {
    pub(crate) fn new(
        tx: SyncSender<BackendMsg>,
        armed: Arc<AtomicBool>,
        waker: PollWaker,
    ) -> LinkSender {
        LinkSender { tx, armed, waker }
    }

    /// Queues a message for the mux, blocking when the channel is full
    /// (the backpressure point for producers).
    ///
    /// # Errors
    /// The mux dropped the receiving half — the link is gone.
    pub(crate) fn send(&self, msg: BackendMsg) -> Result<(), SendError<BackendMsg>> {
        self.tx.send(msg)?;
        if !self.armed.swap(true, Ordering::AcqRel) {
            self.waker.wake();
        }
        Ok(())
    }
}

/// The mux-side half of one backend link, handed to [`backend_mux`] at
/// bind time.
pub(crate) struct MuxLink {
    /// Receiving half of the forwarding channel.
    pub(crate) rx: Receiver<BackendMsg>,
    /// Cleared by the mux each time it drains the channel; see
    /// [`LinkSender::send`].
    pub(crate) armed: Arc<AtomicBool>,
    /// The connected backend socket (already nonblocking).
    pub(crate) stream: TcpStream,
}

/// What a router-driven checkpoint capture got back: a full image blob
/// (`Snapshot` reply) or the next increment of the backend's delta chain
/// (`Delta` reply).
pub(crate) enum CaptureReply {
    /// A full `TADF` fleet image.
    Full(Bytes),
    /// A `TADD` delta blob.
    Delta(Bytes),
}

/// One in-flight request on a backend link that will be answered by a
/// trip-less reply, staged in wire order.
pub(crate) enum PendingEntry {
    /// A front-facing fleet barrier and its barrier id.
    Barrier(BarrierKind, u64),
    /// A router-driven checkpoint capture (`SnapshotRequest` or
    /// `DeltaRequest`); the driver blocks on the channel.
    Checkpoint(SyncSender<Result<CaptureReply, String>>),
    /// A router-driven `Install`; the reply carries the delivered session
    /// count.
    Install(SyncSender<Result<u64, String>>),
    /// A router-driven `Drain`; the reply carries the captured image.
    Drain(SyncSender<Result<Bytes, String>>),
    /// A replay fence: a `Flush` whose `Stats` reply is consumed by the
    /// recovery/handoff machinery instead of a front connection.
    Fence(SyncSender<Result<FleetSnapshot, String>>),
}

/// The single per-link pending queue (see the module docs for the
/// ordering contract).
#[derive(Default)]
pub(crate) struct Pending {
    queue: Mutex<VecDeque<PendingEntry>>,
}

impl Pending {
    pub(crate) fn push(&self, entry: PendingEntry) {
        self.queue.lock().expect("pending queue").push_back(entry);
    }

    pub(crate) fn pop(&self) -> Option<PendingEntry> {
        self.queue.lock().expect("pending queue").pop_front()
    }

    /// Undoes a stage whose channel send failed. The caller still holds
    /// the stage lock, so nobody staged after it: the entry — unless the
    /// down sweep already drained it — is the tail.
    pub(crate) fn unstage_tail(&self, matches: impl Fn(&PendingEntry) -> bool) {
        let mut queue = self.queue.lock().expect("pending queue");
        if queue.back().is_some_and(matches) {
            queue.pop_back();
        }
    }

    /// Atomically takes every staged entry (the backend-down sweep).
    pub(crate) fn drain_all(&self) -> Vec<PendingEntry> {
        self.queue.lock().expect("pending queue").drain(..).collect()
    }
}

/// Mux-side state for one backend link.
struct LinkIo {
    conn: Conn<TcpStream>,
    /// Receiving half of the forwarding channel; dropped (taken) the
    /// moment the link dies, so producers blocked in [`LinkSender::send`]
    /// on a full channel — and all future senders — get `SendError`
    /// immediately instead of waiting on a receiver nobody drains.
    rx: Option<Receiver<BackendMsg>>,
    armed: Arc<AtomicBool>,
    interest: Interest,
    /// Still registered with the poller.
    open: bool,
    /// `Close` received (or the channel hung up): flush the remaining
    /// backlog, then tear the link down.
    closing: bool,
}

/// Why a link must leave the mux.
enum LinkFault {
    /// Orderly `Close` fully flushed, a peer EOF, a framing fault, or a
    /// transport error — all terminal for a multiplexed link.
    Dead,
}

/// The single backend-side event loop: owns every link's socket, drains
/// forwarding channels into per-link write buffers, flushes as sockets
/// accept bytes, and fans reassembled response frames back in through
/// [`Core::on_backend_response`]. Every link death — orderly close,
/// channel disconnect, EOF, or a transport/frame error — runs
/// [`Core::backend_down`] for that link (idempotent; the heavyweight
/// failover half is guarded by the link's `down_handled` flag), then the
/// link is deregistered and the loop keeps serving the survivors. The
/// thread exits once no registered link remains.
pub(crate) fn backend_mux(
    mut source: PollSource,
    links: Vec<MuxLink>,
    core: Arc<Core>,
    max_frame: usize,
) {
    let mut ios: Vec<LinkIo> = Vec::with_capacity(links.len());
    for (idx, link) in links.into_iter().enumerate() {
        let conn = Conn::new(link.stream, max_frame);
        let interest = Interest { readable: true, writable: false };
        let open = source.register(idx as u64, conn.io(), interest).is_ok();
        // A link that never registers is dead on arrival: drop its
        // receiver too, so senders fail fast instead of filling the
        // channel and blocking forever.
        let rx = open.then_some(link.rx);
        if !open {
            Core::backend_down(&core, idx as u32);
        }
        ios.push(LinkIo { conn, rx, armed: link.armed, interest, open, closing: false });
    }

    let mut readiness = Vec::new();
    let mut frames: Vec<Bytes> = Vec::new();
    while ios.iter().any(|l| l.open) {
        if source.wait(&mut readiness, None).is_err() {
            break;
        }
        for r in readiness.drain(..) {
            let idx = r.key as usize;
            if idx >= ios.len() || !ios[idx].open {
                continue;
            }
            if r.writable && pump_link(&mut ios[idx]).is_err() {
                reap(&mut source, &mut ios[idx], &core, idx);
                continue;
            }
            if r.readable && read_link(&mut ios[idx], &core, idx, &mut frames).is_err() {
                reap(&mut source, &mut ios[idx], &core, idx);
            }
        }
        // Channel-armed links: producers queued frames since the last
        // drain (the notify that woke this tick may cover many sends).
        for (idx, l) in ios.iter_mut().enumerate() {
            if l.open && l.armed.swap(false, Ordering::AcqRel) && pump_link(l).is_err() {
                reap(&mut source, l, &core, idx);
            }
        }
        // Reconcile write interest with what is left unflushed.
        for (idx, l) in ios.iter_mut().enumerate() {
            if !l.open {
                continue;
            }
            let desired = Interest { readable: !l.closing, writable: l.conn.wants_write() };
            if desired != l.interest {
                if source.reregister(idx as u64, l.conn.io(), desired).is_ok() {
                    l.interest = desired;
                } else {
                    reap(&mut source, l, &core, idx);
                }
            }
        }
    }
    // Shutdown (or total backend loss): best-effort flush, then make
    // sure every link has run its down sweep.
    for (idx, l) in ios.iter_mut().enumerate() {
        if l.open {
            let _ = l.conn.flush_writes();
            reap(&mut source, l, &core, idx);
        }
    }
}

/// Moves frames channel → write buffer → socket for one link. Stops
/// draining the channel at the write high-water mark (bounded memory;
/// the channel then backpressures producers) and stops writing when the
/// socket would block (write readiness resumes it).
///
/// # Errors
/// The link is finished: its `Close` was fully flushed, or the transport
/// failed.
fn pump_link(l: &mut LinkIo) -> Result<(), LinkFault> {
    loop {
        let mut hit_empty = false;
        while !l.closing && l.conn.write_backlog() < WRITE_HIGHWATER {
            match l.rx.as_ref().map_or(Err(TryRecvError::Disconnected), Receiver::try_recv) {
                Ok(BackendMsg::Forward(req)) => l.conn.queue_bytes(&request_to_bytes(&req)),
                Ok(BackendMsg::Close) | Err(TryRecvError::Disconnected) => l.closing = true,
                Err(TryRecvError::Empty) => {
                    hit_empty = true;
                    break;
                }
            }
        }
        let drained = l.conn.flush_writes().map_err(|_| LinkFault::Dead)?;
        if !drained {
            // Socket full; the write-interest reconciliation pass keeps
            // the backlog registered and readiness resumes the flush.
            return Ok(());
        }
        if l.closing {
            // Everything buffered before the Close is on the wire.
            return Err(LinkFault::Dead);
        }
        if hit_empty {
            return Ok(());
        }
        // The channel drain stopped at the high-water mark but the socket
        // absorbed the whole backlog: keep going.
    }
}

/// Reads whatever the backend socket has (bounded per tick), reassembles
/// complete frames, and fans each one back in. Frames decoded before a
/// fault are still dispatched — they are valid replies. At the first
/// undecodable response the dispatch stops: a lost reply would misalign
/// the per-link pending FIFO, so frames past the corruption point must
/// not be matched against pending entries — the link dies and the down
/// sweep fails every staged entry instead.
///
/// # Errors
/// EOF, a framing fault, or a transport error: the multiplexed reply
/// stream cannot be trusted past this point, so the link is dead.
fn read_link(
    l: &mut LinkIo,
    core: &Arc<Core>,
    idx: usize,
    frames: &mut Vec<Bytes>,
) -> Result<(), LinkFault> {
    frames.clear();
    let status = l.conn.read_frames(READ_BUDGET, frames);
    let mut fault = false;
    for bytes in frames.drain(..) {
        match response_from_bytes(bytes) {
            Ok(resp) => core.on_backend_response(idx as u32, resp),
            Err(_) => {
                fault = true;
                break;
            }
        }
    }
    if fault {
        return Err(LinkFault::Dead);
    }
    match status {
        Ok(ReadStatus::WouldBlock) | Ok(ReadStatus::BudgetSpent) => Ok(()),
        Ok(ReadStatus::Eof) | Err(_) => Err(LinkFault::Dead),
    }
}

/// Removes a finished link from the poller and runs the (idempotent)
/// backend-down sweep: staged entries are drained — failed, or carried
/// into a failover — and front connections with live trips on this
/// backend get typed errors unless a standby can take over. Dropping the
/// channel receiver here is load-bearing: it wakes every producer
/// blocked in [`LinkSender::send`] on a full channel (and fails all
/// future sends) with `SendError`, upholding the module contract that no
/// caller can wait forever on a dead link — including the server's
/// blocking per-link `Close` send at shutdown.
fn reap(source: &mut PollSource, l: &mut LinkIo, core: &Arc<Core>, idx: usize) {
    let _ = source.deregister(idx as u64, l.conn.io());
    l.open = false;
    drop(l.rx.take());
    Core::backend_down(core, idx as u32);
}
