//! The router's backend side: one pipelined TCP connection per `tad-net`
//! backend, with a writer thread batching forwarded frames and a reader
//! thread fanning responses back in.
//!
//! Ordering is the load-bearing property. All router traffic to one
//! backend travels a single connection, fed by a single bounded channel
//! drained by a single writer thread — so the order in which frames enter
//! the channel is the order they hit the backend's socket, and the
//! backend's replies come back in a compatible order on the same
//! connection. Barrier frames (`Flush` / `SnapshotRequest`) ride the same
//! channel; the front handler stages each barrier id in the matching
//! per-kind FIFO *atomically with* the channel send (under
//! [`BackendLink::stage`]), so FIFO order always equals wire order and —
//! crucially — a barrier is in the FIFO from the moment it is accepted:
//! whichever of the reader or writer dies first runs the backend-down
//! sweep and fails every staged barrier, so no front connection can wait
//! forever on a reply that will never come.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{Arc, Mutex};

use tad_net::{read_response, write_request, Request};

use crate::server::Core;

/// One frame bound for a backend, queued behind the backend's writer.
pub(crate) enum BackendMsg {
    /// A frame forwarded verbatim (ingest or barrier; barrier ids are
    /// staged by the sender, not the writer).
    Forward(Request),
    /// Orderly shutdown: flush what is buffered and exit.
    Close,
}

/// Barrier ids awaiting their reply from one backend, in wire order.
#[derive(Default)]
pub(crate) struct Pending {
    pub(crate) flushes: Mutex<VecDeque<u64>>,
    pub(crate) snapshots: Mutex<VecDeque<u64>>,
    pub(crate) metrics: Mutex<VecDeque<u64>>,
}

/// Drains the backend channel to the socket, batching writes between
/// flushes (same shape as `tad-net`'s connection writer). Every exit path
/// — orderly close, channel disconnect, or a write failure — runs
/// [`Core::on_backend_down`]: it is idempotent, shuts the socket (waking
/// the reader), and sweeps staged barriers, which closes the race where a
/// barrier frame is accepted onto the channel but never reaches the wire.
pub(crate) fn backend_writer(
    rx: Receiver<BackendMsg>,
    stream: TcpStream,
    core: Arc<Core>,
    idx: u32,
) {
    let mut w = BufWriter::new(stream);
    // None => orderly close requested; Some(ok) => write outcome.
    let handle = |w: &mut BufWriter<TcpStream>, msg: BackendMsg| -> Option<bool> {
        match msg {
            BackendMsg::Close => None,
            BackendMsg::Forward(req) => Some(write_request(w, &req).is_ok()),
        }
    };
    'serve: while let Ok(msg) = rx.recv() {
        match handle(&mut w, msg) {
            None => break 'serve,
            Some(false) => break 'serve,
            Some(true) => {}
        }
        // Opportunistically batch whatever is already queued, then flush
        // once.
        loop {
            match rx.try_recv() {
                Ok(msg) => match handle(&mut w, msg) {
                    None => break 'serve,
                    Some(false) => break 'serve,
                    Some(true) => {}
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'serve,
            }
        }
        if w.flush().is_err() {
            break 'serve;
        }
    }
    let _ = w.flush();
    core.on_backend_down(idx);
}

/// Reads the backend's response stream and fans each frame back in
/// through the router core. Exits on EOF or any transport/frame error —
/// a router↔backend link carries multiplexed traffic, so a framing fault
/// is unrecoverable — and then runs the backend-down cleanup: barrier
/// failures for staged FIFO entries and typed errors to every front
/// connection with a live trip on this backend.
pub(crate) fn backend_reader(idx: u32, mut stream: TcpStream, core: Arc<Core>, max_frame: usize) {
    while let Ok(Some(resp)) = read_response(&mut stream, max_frame) {
        core.on_backend_response(idx, resp);
    }
    core.on_backend_down(idx);
}
