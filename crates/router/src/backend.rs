//! The router's backend side: one pipelined TCP connection per `tad-net`
//! backend, with a writer thread batching forwarded frames and a reader
//! thread fanning responses back in.
//!
//! Ordering is the load-bearing property. All router traffic to one
//! backend travels a single connection, fed by a single bounded channel
//! drained by a single writer thread — so the order in which frames enter
//! the channel is the order they hit the backend's socket, and the
//! backend answers admin frames in that same order on the same
//! connection. Every request that expects a trip-less reply — a front
//! barrier (`Flush` / `SnapshotRequest` / `MetricsRequest`), a
//! router-driven checkpoint capture, an `Install`, a `Drain`, or a replay
//! fence — is staged as a [`PendingEntry`] in the link's single pending
//! queue *atomically with* the channel send (under the link's stage
//! lock), so queue order always equals wire order and the head of the
//! queue is always the request the backend's next trip-less reply
//! answers. Crucially, an entry is in the queue from the moment its frame
//! is accepted: whichever of the reader or writer dies first runs the
//! backend-down sweep and drains every staged entry, so no caller can
//! wait forever on a reply that will never come.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use tad_net::{read_response, write_request, Request};
use tad_serve::FleetSnapshot;

use crate::server::{BarrierKind, Core};

/// One frame bound for a backend, queued behind the backend's writer.
pub(crate) enum BackendMsg {
    /// A frame forwarded verbatim (ingest or a staged admin frame; the
    /// sender stages pending entries, not the writer).
    Forward(Request),
    /// Orderly shutdown: flush what is buffered and exit.
    Close,
}

/// What a router-driven checkpoint capture got back: a full image blob
/// (`Snapshot` reply) or the next increment of the backend's delta chain
/// (`Delta` reply).
pub(crate) enum CaptureReply {
    /// A full `TADF` fleet image.
    Full(Bytes),
    /// A `TADD` delta blob.
    Delta(Bytes),
}

/// One in-flight request on a backend link that will be answered by a
/// trip-less reply, staged in wire order.
pub(crate) enum PendingEntry {
    /// A front-facing fleet barrier and its barrier id.
    Barrier(BarrierKind, u64),
    /// A router-driven checkpoint capture (`SnapshotRequest` or
    /// `DeltaRequest`); the driver blocks on the channel.
    Checkpoint(SyncSender<Result<CaptureReply, String>>),
    /// A router-driven `Install`; the reply carries the delivered session
    /// count.
    Install(SyncSender<Result<u64, String>>),
    /// A router-driven `Drain`; the reply carries the captured image.
    Drain(SyncSender<Result<Bytes, String>>),
    /// A replay fence: a `Flush` whose `Stats` reply is consumed by the
    /// recovery/handoff machinery instead of a front connection.
    Fence(SyncSender<Result<FleetSnapshot, String>>),
}

/// The single per-link pending queue (see the module docs for the
/// ordering contract).
#[derive(Default)]
pub(crate) struct Pending {
    queue: Mutex<VecDeque<PendingEntry>>,
}

impl Pending {
    pub(crate) fn push(&self, entry: PendingEntry) {
        self.queue.lock().expect("pending queue").push_back(entry);
    }

    pub(crate) fn pop(&self) -> Option<PendingEntry> {
        self.queue.lock().expect("pending queue").pop_front()
    }

    /// Undoes a stage whose channel send failed. The caller still holds
    /// the stage lock, so nobody staged after it: the entry — unless the
    /// down sweep already drained it — is the tail.
    pub(crate) fn unstage_tail(&self, matches: impl Fn(&PendingEntry) -> bool) {
        let mut queue = self.queue.lock().expect("pending queue");
        if queue.back().is_some_and(matches) {
            queue.pop_back();
        }
    }

    /// Atomically takes every staged entry (the backend-down sweep).
    pub(crate) fn drain_all(&self) -> Vec<PendingEntry> {
        self.queue.lock().expect("pending queue").drain(..).collect()
    }
}

/// Drains the backend channel to the socket, batching writes between
/// flushes (same shape as `tad-net`'s connection writer). Every exit path
/// — orderly close, channel disconnect, or a write failure — runs
/// [`Core::backend_down`]: it shuts the socket (waking the reader) and
/// sweeps staged entries, which closes the race where a staged frame is
/// accepted onto the channel but never reaches the wire.
pub(crate) fn backend_writer(
    rx: Receiver<BackendMsg>,
    stream: TcpStream,
    core: Arc<Core>,
    idx: u32,
) {
    let mut w = BufWriter::new(stream);
    // None => orderly close requested; Some(ok) => write outcome.
    let handle = |w: &mut BufWriter<TcpStream>, msg: BackendMsg| -> Option<bool> {
        match msg {
            BackendMsg::Close => None,
            BackendMsg::Forward(req) => Some(write_request(w, &req).is_ok()),
        }
    };
    'serve: while let Ok(msg) = rx.recv() {
        match handle(&mut w, msg) {
            None => break 'serve,
            Some(false) => break 'serve,
            Some(true) => {}
        }
        // Opportunistically batch whatever is already queued, then flush
        // once.
        loop {
            match rx.try_recv() {
                Ok(msg) => match handle(&mut w, msg) {
                    None => break 'serve,
                    Some(false) => break 'serve,
                    Some(true) => {}
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'serve,
            }
        }
        if w.flush().is_err() {
            break 'serve;
        }
    }
    let _ = w.flush();
    Core::backend_down(&core, idx);
}

/// Reads the backend's response stream and fans each frame back in
/// through the router core. Exits on EOF or any transport/frame error —
/// a router↔backend link carries multiplexed traffic, so a framing fault
/// is unrecoverable — and then runs the backend-down cleanup: staged
/// entries are drained (failed, or carried into a failover), and front
/// connections with live trips on this backend get typed errors unless a
/// standby can take over.
pub(crate) fn backend_reader(idx: u32, mut stream: TcpStream, core: Arc<Core>, max_frame: usize) {
    while let Ok(Some(resp)) = read_response(&mut stream, max_frame) {
        core.on_backend_response(idx, resp);
    }
    Core::backend_down(&core, idx);
}
