//! Blocking stream I/O for `TADN` frames: length-prefixed reads with a
//! payload cap, clean-EOF detection, and buffered writes.
//!
//! A reader fetches the fixed 14-byte envelope header first, validates
//! magic/version and the announced payload length **before allocating**,
//! then reads the rest of the frame and hands the whole envelope to the
//! frame codec (which re-verifies the checksum). A peer announcing a
//! payload longer than the cap is refused with
//! [`FrameError::TooLarge`] without any allocation — the defence against
//! memory-exhaustion by hostile length prefixes.

use std::io::{Read, Write};

use bytes::Bytes;
use causaltad::envelope::ENVELOPE_HEADER_LEN;

use crate::frame::{
    request_from_bytes, request_to_bytes, response_from_bytes, response_to_bytes, FrameError,
    Request, Response, FRAME_MAGIC, FRAME_VERSION,
};

/// Why a frame could not be received from a stream.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying socket failed (including an EOF in the middle of a
    /// frame — a peer vanishing mid-frame is a transport error, not a
    /// clean close).
    Io(std::io::Error),
    /// The bytes received do not decode as a frame. Framing is lost after
    /// this: the connection should be closed.
    Frame(FrameError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "socket error: {e}"),
            RecvError::Frame(e) => write!(f, "wire protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl From<FrameError> for RecvError {
    fn from(e: FrameError) -> Self {
        RecvError::Frame(e)
    }
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the stream was
/// cleanly closed before the first byte (frame-aligned EOF); an EOF after
/// at least one byte is an `UnexpectedEof` error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one whole envelope (header + payload + checksum) off the stream,
/// refusing payloads longer than `max_payload` before allocating.
/// `Ok(None)` is a clean frame-aligned EOF.
fn read_frame_bytes(r: &mut impl Read, max_payload: usize) -> Result<Option<Bytes>, RecvError> {
    let mut header = [0u8; ENVELOPE_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    // Validate the header before trusting the length: garbage magic means
    // garbage length, and the caller should learn "bad magic", not "frame
    // too large".
    if &header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic.into());
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version).into());
    }
    let plen = u64::from_le_bytes(header[6..14].try_into().expect("8 header bytes"));
    if plen > max_payload as u64 {
        return Err(FrameError::TooLarge { len: plen, max: max_payload }.into());
    }
    // One allocation for the whole envelope: the body is read directly
    // into its final resting place behind the copied header.
    let mut whole = vec![0u8; ENVELOPE_HEADER_LEN + plen as usize + 8];
    whole[..ENVELOPE_HEADER_LEN].copy_from_slice(&header);
    if !read_exact_or_eof(r, &mut whole[ENVELOPE_HEADER_LEN..])? {
        return Err(RecvError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        )));
    }
    Ok(Some(Bytes::from(whole)))
}

/// Reads one request frame. `Ok(None)` is a clean frame-aligned EOF.
///
/// # Errors
/// [`RecvError::Io`] for transport failures (including mid-frame EOF),
/// [`RecvError::Frame`] for undecodable or over-long frames.
pub fn read_request(r: &mut impl Read, max_payload: usize) -> Result<Option<Request>, RecvError> {
    Ok(read_request_timed(r, max_payload)?.map(|(req, _)| req))
}

/// [`read_request`] plus the nanoseconds spent *decoding* the frame once
/// its bytes were in memory (socket wait excluded) — what the server
/// records into its `net.frame_decode_ns` histogram.
///
/// # Errors
/// Same as [`read_request`].
pub fn read_request_timed(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<Option<(Request, u64)>, RecvError> {
    match read_frame_bytes(r, max_payload)? {
        Some(bytes) => {
            let started = std::time::Instant::now();
            let req = request_from_bytes(bytes)?;
            Ok(Some((req, started.elapsed().as_nanos() as u64)))
        }
        None => Ok(None),
    }
}

/// Reads one response frame. `Ok(None)` is a clean frame-aligned EOF.
///
/// # Errors
/// [`RecvError::Io`] for transport failures (including mid-frame EOF),
/// [`RecvError::Frame`] for undecodable or over-long frames.
pub fn read_response(r: &mut impl Read, max_payload: usize) -> Result<Option<Response>, RecvError> {
    match read_frame_bytes(r, max_payload)? {
        Some(bytes) => Ok(Some(response_from_bytes(bytes)?)),
        None => Ok(None),
    }
}

/// Writes one request frame (no flush — callers batch then flush).
///
/// # Errors
/// Propagates the writer's I/O error.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    w.write_all(&request_to_bytes(req))
}

/// Writes one response frame (no flush — callers batch then flush).
///
/// # Errors
/// Propagates the writer's I/O error.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    w.write_all(&response_to_bytes(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf: Vec<u8> = Vec::new();
        let reqs = [
            Request::TripStart { id: 1, source: 0, dest: 9, time_slot: 3 },
            Request::Segment { id: 1, seg: 4 },
            Request::Flush,
        ];
        for req in &reqs {
            write_request(&mut buf, req).expect("vec write");
        }
        let mut cursor = &buf[..];
        for req in &reqs {
            let got = read_request(&mut cursor, 1024).expect("read").expect("frame");
            assert_eq!(&got, req);
        }
        assert!(read_request(&mut cursor, 1024).expect("clean eof").is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_io_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(&mut buf, &Request::TripEnd { id: 3 }).expect("vec write");
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            match read_request(&mut cursor, 1024) {
                Err(RecvError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut={cut}")
                }
                other => panic!("cut={cut}: expected UnexpectedEof, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let resp =
            Response::Error { code: ErrorCode::Rejected, trip: None, detail: "x".repeat(100) };
        let blob = response_to_bytes(&resp);
        let mut cursor = &blob[..];
        match read_response(&mut cursor, 16) {
            Err(RecvError::Frame(FrameError::TooLarge { max: 16, .. })) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The same frame passes with an adequate cap.
        let mut cursor = &blob[..];
        assert!(read_response(&mut cursor, 4096).expect("read").is_some());
    }

    #[test]
    fn garbage_magic_surfaces_before_length() {
        // 14 bytes of garbage whose "length" field would be enormous: the
        // reader must report BadMagic, not TooLarge or an allocation.
        let raw = [0xFFu8; 14];
        let mut cursor = &raw[..];
        match read_request(&mut cursor, 64) {
            Err(RecvError::Frame(FrameError::BadMagic)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
}
