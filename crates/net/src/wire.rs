//! Stream I/O for `TADN` frames: length-prefixed reads with a payload
//! cap, clean-EOF detection, buffered writes, and the incremental
//! [`FrameAssembler`] behind the nonblocking event loop.
//!
//! A reader fetches the fixed 14-byte envelope header first, validates
//! magic/version and the announced payload length **before allocating**,
//! then reads the rest of the frame and hands the whole envelope to the
//! frame codec (which re-verifies the checksum). A peer announcing a
//! payload longer than the cap is refused with
//! [`FrameError::TooLarge`] without any allocation — the defence against
//! memory-exhaustion by hostile length prefixes. The [`FrameAssembler`]
//! applies exactly the same validation order to bytes arriving in
//! arbitrary nonblocking chunks: a header is judged the moment its 14
//! bytes are buffered, so a hostile length prefix is refused even when
//! the rest of the "frame" never arrives.

use std::io::{Read, Write};

use bytes::Bytes;
use causaltad::envelope::ENVELOPE_HEADER_LEN;

use crate::frame::{
    request_from_bytes, request_to_bytes, response_from_bytes, response_to_bytes, FrameError,
    Request, Response, FRAME_MAGIC, FRAME_VERSION,
};

/// Why a frame could not be received from a stream.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying socket failed (including an EOF in the middle of a
    /// frame — a peer vanishing mid-frame is a transport error, not a
    /// clean close).
    Io(std::io::Error),
    /// The bytes received do not decode as a frame. Framing is lost after
    /// this: the connection should be closed.
    Frame(FrameError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "socket error: {e}"),
            RecvError::Frame(e) => write!(f, "wire protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl From<FrameError> for RecvError {
    fn from(e: FrameError) -> Self {
        RecvError::Frame(e)
    }
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the stream was
/// cleanly closed before the first byte (frame-aligned EOF); an EOF after
/// at least one byte is an `UnexpectedEof` error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Validates a 14-byte envelope header and returns the announced payload
/// length. Magic is judged before version before length, so garbage bytes
/// report "bad magic", not a nonsense "frame too large".
fn validate_header(
    header: &[u8; ENVELOPE_HEADER_LEN],
    max_payload: usize,
) -> Result<u64, FrameError> {
    if &header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let plen = u64::from_le_bytes(header[6..14].try_into().expect("8 header bytes"));
    if plen > max_payload as u64 {
        return Err(FrameError::TooLarge { len: plen, max: max_payload });
    }
    Ok(plen)
}

/// Reads one whole envelope (header + payload + checksum) off the stream,
/// refusing payloads longer than `max_payload` before allocating.
/// `Ok(None)` is a clean frame-aligned EOF.
fn read_frame_bytes(r: &mut impl Read, max_payload: usize) -> Result<Option<Bytes>, RecvError> {
    let mut header = [0u8; ENVELOPE_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    // Validate the header before trusting the length: garbage magic means
    // garbage length, and the caller should learn "bad magic", not "frame
    // too large".
    let plen = validate_header(&header, max_payload)?;
    // One allocation for the whole envelope: the body is read directly
    // into its final resting place behind the copied header.
    let mut whole = vec![0u8; ENVELOPE_HEADER_LEN + plen as usize + 8];
    whole[..ENVELOPE_HEADER_LEN].copy_from_slice(&header);
    if !read_exact_or_eof(r, &mut whole[ENVELOPE_HEADER_LEN..])? {
        return Err(RecvError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        )));
    }
    Ok(Some(Bytes::from(whole)))
}

/// Incremental `TADN` envelope reassembly for nonblocking reads: feed it
/// whatever chunk of bytes the socket produced — a byte, half a header,
/// three frames and a tail — and pull complete envelopes out as they
/// form. This is the event loop's counterpart of [`read_request`]'s
/// blocking header-then-payload read, with the identical validation
/// order: a header is judged ([`FrameError::BadMagic`] /
/// [`FrameError::BadVersion`] / [`FrameError::TooLarge`]) as soon as its
/// 14 bytes are buffered, **before** any payload-sized allocation, so a
/// hostile length prefix is refused even if the announced payload never
/// arrives.
///
/// After an error the stream's framing is lost; the assembler keeps
/// returning the same error and the connection should be closed
/// (property-tested against hostile split points in `tests/props.rs`).
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Cursor of the first unconsumed byte in `buf` (compacted lazily so
    /// per-frame extraction is not O(buffered bytes)).
    start: usize,
    max_payload: usize,
}

/// Compact the assembler's buffer once the dead prefix crosses this many
/// bytes (or the buffer empties, which is free).
const ASSEMBLER_COMPACT_AT: usize = 64 << 10;

impl FrameAssembler {
    /// An empty assembler refusing payloads longer than `max_payload`.
    pub fn new(max_payload: usize) -> FrameAssembler {
        FrameAssembler { buf: Vec::new(), start: 0, max_payload }
    }

    /// Appends one chunk of received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= ASSEMBLER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete envelope, if one has fully arrived.
    /// `Ok(None)` means "keep feeding"; the returned [`Bytes`] is a whole
    /// envelope ready for [`crate::request_from_bytes`] /
    /// [`crate::response_from_bytes`].
    ///
    /// # Errors
    /// The same typed [`FrameError`]s as the blocking reader, surfaced at
    /// the earliest byte that proves the stream hostile.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < ENVELOPE_HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; ENVELOPE_HEADER_LEN] =
            avail[..ENVELOPE_HEADER_LEN].try_into().expect("header slice");
        let plen = validate_header(&header, self.max_payload)? as usize;
        let total = ENVELOPE_HEADER_LEN + plen + 8;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = Bytes::from(avail[..total].to_vec());
        self.start += total;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed by a complete frame — nonzero
    /// at EOF means the peer vanished mid-frame (a transport error, not a
    /// clean close).
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Reads one request frame. `Ok(None)` is a clean frame-aligned EOF.
///
/// # Errors
/// [`RecvError::Io`] for transport failures (including mid-frame EOF),
/// [`RecvError::Frame`] for undecodable or over-long frames.
pub fn read_request(r: &mut impl Read, max_payload: usize) -> Result<Option<Request>, RecvError> {
    Ok(read_request_timed(r, max_payload)?.map(|(req, _)| req))
}

/// [`read_request`] plus the nanoseconds spent *decoding* the frame once
/// its bytes were in memory (socket wait excluded) — what the server
/// records into its `net.frame_decode_ns` histogram.
///
/// # Errors
/// Same as [`read_request`].
pub fn read_request_timed(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<Option<(Request, u64)>, RecvError> {
    match read_frame_bytes(r, max_payload)? {
        Some(bytes) => {
            let started = std::time::Instant::now();
            let req = request_from_bytes(bytes)?;
            Ok(Some((req, started.elapsed().as_nanos() as u64)))
        }
        None => Ok(None),
    }
}

/// Reads one response frame. `Ok(None)` is a clean frame-aligned EOF.
///
/// # Errors
/// [`RecvError::Io`] for transport failures (including mid-frame EOF),
/// [`RecvError::Frame`] for undecodable or over-long frames.
pub fn read_response(r: &mut impl Read, max_payload: usize) -> Result<Option<Response>, RecvError> {
    match read_frame_bytes(r, max_payload)? {
        Some(bytes) => Ok(Some(response_from_bytes(bytes)?)),
        None => Ok(None),
    }
}

/// Writes one request frame (no flush — callers batch then flush).
///
/// # Errors
/// Propagates the writer's I/O error.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    w.write_all(&request_to_bytes(req))
}

/// Writes one response frame (no flush — callers batch then flush).
///
/// # Errors
/// Propagates the writer's I/O error.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    w.write_all(&response_to_bytes(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf: Vec<u8> = Vec::new();
        let reqs = [
            Request::TripStart { id: 1, source: 0, dest: 9, time_slot: 3 },
            Request::Segment { id: 1, seg: 4 },
            Request::Flush,
        ];
        for req in &reqs {
            write_request(&mut buf, req).expect("vec write");
        }
        let mut cursor = &buf[..];
        for req in &reqs {
            let got = read_request(&mut cursor, 1024).expect("read").expect("frame");
            assert_eq!(&got, req);
        }
        assert!(read_request(&mut cursor, 1024).expect("clean eof").is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_io_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_request(&mut buf, &Request::TripEnd { id: 3 }).expect("vec write");
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            match read_request(&mut cursor, 1024) {
                Err(RecvError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut={cut}")
                }
                other => panic!("cut={cut}: expected UnexpectedEof, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let resp = Response::Error {
            code: ErrorCode::Rejected,
            trip: None,
            retry_after_ms: None,
            detail: "x".repeat(100),
        };
        let blob = response_to_bytes(&resp);
        let mut cursor = &blob[..];
        match read_response(&mut cursor, 16) {
            Err(RecvError::Frame(FrameError::TooLarge { max: 16, .. })) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The same frame passes with an adequate cap.
        let mut cursor = &blob[..];
        assert!(read_response(&mut cursor, 4096).expect("read").is_some());
    }

    #[test]
    fn assembler_reassembles_frames_split_at_every_boundary() {
        let mut blob: Vec<u8> = Vec::new();
        let reqs = [
            Request::TripStart { id: 7, source: 2, dest: 5, time_slot: 1 },
            Request::Segment { id: 7, seg: 3 },
            Request::TripEnd { id: 7 },
        ];
        for req in &reqs {
            write_request(&mut blob, req).expect("vec write");
        }
        for cut in 0..=blob.len() {
            let mut asm = FrameAssembler::new(1024);
            let mut got = Vec::new();
            for chunk in [&blob[..cut], &blob[cut..]] {
                asm.feed(chunk);
                while let Some(frame) = asm.next_frame().expect("clean stream") {
                    got.push(crate::frame::request_from_bytes(frame).expect("decodes"));
                }
            }
            assert_eq!(got, reqs, "cut={cut}");
            assert!(!asm.has_partial(), "cut={cut}: no residue after the last frame");
        }
    }

    #[test]
    fn assembler_judges_headers_before_payloads_exist() {
        // A hostile length prefix with no payload behind it: refused the
        // moment the 14th byte lands, exactly like the blocking reader.
        let mut asm = FrameAssembler::new(64);
        let mut header = Vec::new();
        header.extend_from_slice(b"TADN");
        header.extend_from_slice(&1u16.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        asm.feed(&header[..13]);
        assert!(asm.next_frame().expect("13 bytes prove nothing").is_none());
        asm.feed(&header[13..]);
        match asm.next_frame() {
            Err(FrameError::TooLarge { max: 64, .. }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Framing is lost: the error repeats instead of resyncing.
        assert!(asm.next_frame().is_err());

        let mut asm = FrameAssembler::new(64);
        asm.feed(&[0xFF; 14]);
        match asm.next_frame() {
            Err(FrameError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn garbage_magic_surfaces_before_length() {
        // 14 bytes of garbage whose "length" field would be enormous: the
        // reader must report BadMagic, not TooLarge or an allocation.
        let raw = [0xFFu8; 14];
        let mut cursor = &raw[..];
        match read_request(&mut cursor, 64) {
            Err(RecvError::Frame(FrameError::BadMagic)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
}
