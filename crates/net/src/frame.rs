//! The `TADN` wire format: every frame is one standard workspace envelope
//! ([`causaltad::envelope`]) whose payload is a tag byte plus a
//! little-endian body.
//!
//! ```text
//! +-------+---------+-------------+----------------------+-----------+
//! | TADN  | version | payload len | tag + body           | FNV-1a 64 |
//! | 4 B   | u16 LE  | u64 LE      | len bytes            | u64 LE    |
//! +-------+---------+-------------+----------------------+-----------+
//! ```
//!
//! Request tags live in `0x01..=0x0F`, response tags in `0x10..=0x1F`, so
//! a peer can never confuse the two directions: decoding a response tag as
//! a request (or vice versa) is a typed [`FrameError::UnexpectedKind`].
//! Like every envelope codec in the workspace, decoding is **total** —
//! truncated, bit-flipped, wrong-magic, wrong-version, or
//! crafted-huge-length inputs all come back as a [`FrameError`], never a
//! panic (property-tested in the repository's `tests/props.rs`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use causaltad::envelope::{open_envelope, seal_envelope, EnvelopeError};
use causaltad::SegmentTrace;
use tad_metrics::{snapshot_from_bytes, snapshot_to_bytes, MetricsSnapshot};
use tad_serve::{Completion, Event, FleetSnapshot, PolicyAction, ScoreUpdate, TripId, TripOutcome};

/// Magic bytes opening every wire frame.
pub const FRAME_MAGIC: &[u8; 4] = b"TADN";
/// Wire-format version carried in every frame header.
pub const FRAME_VERSION: u16 = 1;
/// Default cap on a frame's payload length (64 MiB) — what a reader will
/// allocate for one frame before distrusting the peer. Snapshot frames of
/// very large fleets may need a higher cap on both ends.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;
/// Longest `detail` string an [`Response::Error`] frame may carry; longer
/// strings are truncated at a UTF-8 boundary by the encoder and rejected
/// by the decoder.
pub const MAX_ERROR_DETAIL: usize = 512;

const TAG_TRIP_START: u8 = 0x01;
const TAG_SEGMENT: u8 = 0x02;
const TAG_TRIP_END: u8 = 0x03;
const TAG_FLUSH: u8 = 0x04;
const TAG_SNAPSHOT_REQUEST: u8 = 0x05;
const TAG_METRICS_REQUEST: u8 = 0x06;
const TAG_DELTA_REQUEST: u8 = 0x07;
const TAG_INSTALL: u8 = 0x08;
const TAG_DRAIN: u8 = 0x09;

const TAG_SCORE: u8 = 0x10;
const TAG_TRIP_COMPLETE: u8 = 0x11;
const TAG_STATS: u8 = 0x12;
const TAG_ERROR: u8 = 0x13;
const TAG_SNAPSHOT: u8 = 0x14;
const TAG_METRICS: u8 = 0x15;
const TAG_POLICY_NOTICE: u8 = 0x16;
const TAG_DELTA: u8 = 0x17;
const TAG_INSTALLED: u8 = 0x18;
const TAG_DRAINED: u8 = 0x19;

/// One client→server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open a scoring session: the SD pair and departure slot are known at
    /// order time. The connection that sends this owns the trip — its
    /// [`Response::Score`] and [`Response::TripComplete`] frames are
    /// routed back to it.
    TripStart {
        /// The new trip's id (unique across the fleet).
        id: TripId,
        /// Source road segment.
        source: u32,
        /// Destination road segment.
        dest: u32,
        /// Departure time slot.
        time_slot: u8,
    },
    /// The trip traversed one more road segment.
    Segment {
        /// The trip that moved.
        id: TripId,
        /// The road segment it traversed.
        seg: u32,
    },
    /// The trip finished; its final score should be delivered.
    TripEnd {
        /// The trip that finished.
        id: TripId,
    },
    /// Quiesce barrier: the server replies with [`Response::Stats`] once
    /// every event accepted before this frame has been scored and its
    /// responses queued — so everything sent so far is answered first.
    Flush,
    /// Ask for a fleet snapshot ([`tad_serve::FleetImage`] bytes) for
    /// remote warm restart; answered with [`Response::Snapshot`].
    SnapshotRequest,
    /// Ask for the server's latency/throughput metrics; answered with
    /// [`Response::Metrics`]. A `tad-router` answers with the merged
    /// snapshot of every backend behind it plus its own `router.*`
    /// metrics — one frame, one fleet view.
    MetricsRequest,
    /// Ask for the next delta snapshot of the server's checkpoint chain
    /// (a `TADD` blob for [`tad_serve::delta_from_bytes`]); answered with
    /// [`Response::Delta`]. Fails typed
    /// ([`ErrorCode::SnapshotFailed`]) before the first checkpoint.
    DeltaRequest,
    /// Seed the server's **running** engine with the sessions of a fleet
    /// image (`TADF` blob) — the target half of a live handoff or a
    /// failover restore. Answered with [`Response::Installed`] once the
    /// sessions are enqueued ahead of any later traffic on this
    /// connection.
    Install {
        /// The serialized [`tad_serve::FleetImage`] to restore.
        image: Bytes,
    },
    /// Capture **and remove** every live session (no completion frames
    /// are emitted for them — they are moving, not finishing); answered
    /// with [`Response::Drained`] carrying the image to install
    /// elsewhere.
    Drain,
}

impl Request {
    /// The engine event this request carries, if it is an ingest request
    /// (`TripStart`/`Segment`/`TripEnd`); `None` for control requests.
    pub fn to_event(&self) -> Option<Event> {
        match *self {
            Request::TripStart { id, source, dest, time_slot } => {
                Some(Event::TripStart { id, source, dest, time_slot })
            }
            Request::Segment { id, seg } => Some(Event::Segment { id, seg }),
            Request::TripEnd { id } => Some(Event::TripEnd { id }),
            Request::Flush
            | Request::SnapshotRequest
            | Request::MetricsRequest
            | Request::DeltaRequest
            | Request::Install { .. }
            | Request::Drain => None,
        }
    }
}

impl From<Event> for Request {
    fn from(ev: Event) -> Request {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                Request::TripStart { id, source, dest, time_slot }
            }
            Event::Segment { id, seg } => Request::Segment { id, seg },
            Event::TripEnd { id } => Request::TripEnd { id },
        }
    }
}

/// Final scoring result of a trip as carried on the wire — the network
/// image of [`TripOutcome`]. The segment count is the trace length.
#[derive(Clone, Debug, PartialEq)]
pub struct TripComplete {
    /// The finished trip.
    pub id: TripId,
    /// Why the trip left the engine.
    pub completion: Completion,
    /// Final debiased anomaly score (Eq. 10).
    pub score: f64,
    /// The un-debiased likelihood part of the score.
    pub likelihood_nll: f64,
    /// Accumulated scaling sum `Σ_i log E[1/P(t_i|e_i)]`.
    pub scale_log_sum: f64,
    /// Per-segment score decomposition; one entry per consumed segment.
    pub trace: Vec<SegmentTrace>,
}

impl TripComplete {
    /// Number of segments the trip consumed.
    pub fn segments(&self) -> usize {
        self.trace.len()
    }
}

impl From<TripOutcome> for TripComplete {
    fn from(outcome: TripOutcome) -> TripComplete {
        TripComplete {
            id: outcome.id,
            completion: outcome.completion,
            score: outcome.score,
            likelihood_nll: outcome.likelihood_nll,
            scale_log_sum: outcome.scale_log_sum,
            trace: outcome.trace,
        }
    }
}

/// Why the server refused or failed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The target shard's ingest queue was full; the event was **not**
    /// accepted. The producer must re-send it **before sending any later
    /// event for the same trip** — later events it already pipelined past
    /// the bounce were accepted in arrival order, so a late re-send would
    /// be scored out of order. Producers that pipeline aggressively
    /// should pace with `Flush` barriers or treat a bounce as fatal for
    /// the trip.
    Backpressure,
    /// The request was structurally fine but refused (e.g. a `TripStart`
    /// for a trip id another live connection owns).
    Rejected,
    /// The engine behind the server has shut down; the connection is about
    /// to close.
    EngineClosed,
    /// The peer sent bytes that do not decode as a frame; framing is lost,
    /// so the connection closes after this reply.
    BadFrame,
    /// A requested fleet snapshot could not be captured.
    SnapshotFailed,
    /// The sender exceeded an admission limit — the per-connection rate
    /// limit, or a fleet-wide watermark that sheds new `TripStart`s. When
    /// trip-scoped, the named event was **not** accepted (same re-send
    /// contract as [`ErrorCode::Backpressure`]); trip-less, it is a
    /// once-per-episode pacing notice. The frame's `retry_after_ms` field
    /// carries the server's pacing hint.
    Throttled,
    /// The server is at its configured connection quota; this connection
    /// was refused at accept time and closes after this reply.
    ConnLimit,
    /// The connection sat idle (no frames, no in-flight trips) past the
    /// server's idle timeout; it closes after this reply.
    IdleTimeout,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Backpressure => 0,
            ErrorCode::Rejected => 1,
            ErrorCode::EngineClosed => 2,
            ErrorCode::BadFrame => 3,
            ErrorCode::SnapshotFailed => 4,
            ErrorCode::Throttled => 5,
            ErrorCode::ConnLimit => 6,
            ErrorCode::IdleTimeout => 7,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            0 => Some(ErrorCode::Backpressure),
            1 => Some(ErrorCode::Rejected),
            2 => Some(ErrorCode::EngineClosed),
            3 => Some(ErrorCode::BadFrame),
            4 => Some(ErrorCode::SnapshotFailed),
            5 => Some(ErrorCode::Throttled),
            6 => Some(ErrorCode::ConnLimit),
            7 => Some(ErrorCode::IdleTimeout),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorCode::Backpressure => write!(f, "backpressure (event not accepted; re-send)"),
            ErrorCode::Rejected => write!(f, "request rejected"),
            ErrorCode::EngineClosed => write!(f, "engine closed"),
            ErrorCode::BadFrame => write!(f, "undecodable frame"),
            ErrorCode::SnapshotFailed => write!(f, "snapshot capture failed"),
            ErrorCode::Throttled => write!(f, "throttled (admission limit; pace and retry)"),
            ErrorCode::IdleTimeout => write!(f, "idle timeout"),
            ErrorCode::ConnLimit => write!(f, "connection quota reached"),
        }
    }
}

fn completion_to_byte(c: Completion) -> u8 {
    match c {
        Completion::Ended => 0,
        Completion::EvictedTtl => 1,
        Completion::EvictedLru => 2,
        Completion::Shutdown => 3,
    }
}

fn completion_from_byte(b: u8) -> Option<Completion> {
    match b {
        0 => Some(Completion::Ended),
        1 => Some(Completion::EvictedTtl),
        2 => Some(Completion::EvictedLru),
        3 => Some(Completion::Shutdown),
        _ => None,
    }
}

/// One server→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Per-segment online score delivery: pushed to the owning connection
    /// after every scored segment of its trips, in per-trip order.
    Score(ScoreUpdate),
    /// A trip left the engine (ended, evicted, or flushed at shutdown).
    TripComplete(TripComplete),
    /// Reply to [`Request::Flush`]: point-in-time fleet counters, sent
    /// after the quiesce barrier.
    Stats(FleetSnapshot),
    /// The server refused or failed a request; see [`ErrorCode`].
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// The trip the failed request concerned, when there was one.
        trip: Option<TripId>,
        /// Pacing hint for [`ErrorCode::Throttled`]: how long the sender
        /// should back off before offering more load. `None` for codes
        /// that carry no pacing semantics.
        retry_after_ms: Option<u64>,
        /// Human-readable context (≤ [`MAX_ERROR_DETAIL`] bytes).
        detail: String,
    },
    /// Reply to [`Request::SnapshotRequest`]: a serialized
    /// [`tad_serve::FleetImage`] (`TADF` blob) ready for
    /// [`tad_serve::image_from_bytes`] and a warm restart elsewhere.
    Snapshot {
        /// The snapshot blob.
        image: Bytes,
    },
    /// Reply to [`Request::MetricsRequest`]: the server's metrics
    /// snapshot (a `TADM` blob on the wire, decoded here). From a router
    /// this is the fleet-merged view; [`MetricsSnapshot::merged`] is
    /// exactly associative, so the wire merge is bit-identical to an
    /// in-process aggregation of the same per-backend snapshots.
    Metrics(MetricsSnapshot),
    /// An ingest-sanitization outcome for one of this connection's trips:
    /// the serving layer's `StreamPolicy` dropped a duplicate, repaired a
    /// reorder, handled an off-network gap, or quarantined a malformed
    /// event. Informational — the score stream is unaffected beyond what
    /// the action says — and sent only to the trip's owning connection.
    PolicyNotice {
        /// The trip the sanitization concerned.
        id: TripId,
        /// What the policy layer did.
        action: PolicyAction,
        /// The segment involved, when the action concerns one.
        seg: Option<u32>,
    },
    /// Reply to [`Request::DeltaRequest`]: the next increment of the
    /// server's checkpoint chain (a `TADD` blob for
    /// [`tad_serve::delta_from_bytes`]).
    Delta {
        /// The serialized [`tad_serve::FleetDelta`].
        delta: Bytes,
    },
    /// Reply to [`Request::Install`]: the sessions were delivered to the
    /// running engine.
    Installed {
        /// How many sessions the image carried into the engine.
        sessions: u64,
    },
    /// Reply to [`Request::Drain`]: every live session, captured and
    /// removed, as a `TADF` blob ready for [`Request::Install`] on
    /// another backend.
    Drained {
        /// The serialized [`tad_serve::FleetImage`] of the drained
        /// sessions.
        image: Bytes,
    },
}

/// Why a frame failed to decode. Decoding is total: hostile bytes always
/// land in one of these variants, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Magic bytes did not match `TADN`.
    BadMagic,
    /// Unsupported wire-format version.
    BadVersion(u16),
    /// Input ended before the named field could be read.
    Truncated(&'static str),
    /// The payload checksum did not match (line noise or tampering).
    ChecksumMismatch,
    /// The payload parsed but violated a structural invariant.
    Malformed(&'static str),
    /// The tag byte names no known frame type.
    UnknownTag(u8),
    /// The tag byte names a frame of the wrong direction (a response where
    /// a request was expected, or vice versa).
    UnexpectedKind {
        /// The direction the decoder wanted.
        expected: &'static str,
        /// The direction the tag actually named.
        got: &'static str,
    },
    /// The frame announces a payload longer than the reader's cap; refused
    /// before allocating.
    TooLarge {
        /// Announced payload length.
        len: u64,
        /// The reader's cap.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic bytes"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::Truncated(what) => write!(f, "truncated frame at {what}"),
            FrameError::ChecksumMismatch => write!(f, "frame payload checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            FrameError::UnexpectedKind { expected, got } => {
                write!(f, "expected a {expected} frame, got a {got} frame")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the cap of {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<EnvelopeError> for FrameError {
    fn from(e: EnvelopeError) -> Self {
        match e {
            EnvelopeError::BadMagic => FrameError::BadMagic,
            EnvelopeError::BadVersion(v) => FrameError::BadVersion(v),
            EnvelopeError::Truncated(what) => FrameError::Truncated(what),
            EnvelopeError::ChecksumMismatch => FrameError::ChecksumMismatch,
            EnvelopeError::TrailingBytes => FrameError::Malformed("trailing bytes after checksum"),
        }
    }
}

/// Serialises one request frame (envelope included).
pub fn request_to_bytes(req: &Request) -> Bytes {
    let mut payload = BytesMut::with_capacity(32);
    match *req {
        Request::TripStart { id, source, dest, time_slot } => {
            payload.put_u8(TAG_TRIP_START);
            payload.put_u64_le(id);
            payload.put_u32_le(source);
            payload.put_u32_le(dest);
            payload.put_u8(time_slot);
        }
        Request::Segment { id, seg } => {
            payload.put_u8(TAG_SEGMENT);
            payload.put_u64_le(id);
            payload.put_u32_le(seg);
        }
        Request::TripEnd { id } => {
            payload.put_u8(TAG_TRIP_END);
            payload.put_u64_le(id);
        }
        Request::Flush => payload.put_u8(TAG_FLUSH),
        Request::SnapshotRequest => payload.put_u8(TAG_SNAPSHOT_REQUEST),
        Request::MetricsRequest => payload.put_u8(TAG_METRICS_REQUEST),
        Request::DeltaRequest => payload.put_u8(TAG_DELTA_REQUEST),
        Request::Install { ref image } => {
            // Remainder-is-the-blob, like Response::Snapshot: the
            // envelope's length prefix delimits the image exactly.
            payload.put_u8(TAG_INSTALL);
            payload.put_slice(image);
        }
        Request::Drain => payload.put_u8(TAG_DRAIN),
    }
    seal_envelope(FRAME_MAGIC, FRAME_VERSION, payload.freeze())
}

/// Serialises one response frame (envelope included).
pub fn response_to_bytes(resp: &Response) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    match resp {
        Response::Score(s) => {
            payload.put_u8(TAG_SCORE);
            payload.put_u64_le(s.id);
            payload.put_u32_le(s.seq);
            payload.put_u32_le(s.segment);
            payload.put_f64_le(s.score);
            payload.put_f64_le(s.nll);
            payload.put_f64_le(s.log_scale);
        }
        Response::TripComplete(tc) => {
            payload.put_u8(TAG_TRIP_COMPLETE);
            payload.put_u64_le(tc.id);
            payload.put_u8(completion_to_byte(tc.completion));
            payload.put_f64_le(tc.score);
            payload.put_f64_le(tc.likelihood_nll);
            payload.put_f64_le(tc.scale_log_sum);
            payload.put_u32_le(tc.trace.len() as u32);
            for step in &tc.trace {
                payload.put_u32_le(step.segment);
                payload.put_f64_le(step.nll);
                payload.put_f64_le(step.log_scale);
            }
        }
        Response::Stats(s) => {
            payload.put_u8(TAG_STATS);
            payload.put_u64_le(s.events_ingested);
            payload.put_u64_le(s.segments_scored);
            payload.put_u64_le(s.trips_started);
            payload.put_u64_le(s.trips_completed);
            payload.put_u64_le(s.evictions_ttl);
            payload.put_u64_le(s.evictions_lru);
            payload.put_u64_le(s.rejected);
            payload.put_u64_le(s.off_graph_hits);
            payload.put_u64_le(s.batches);
            payload.put_u64_le(s.active_sessions);
            payload.put_u64_le(s.sessions_restored);
            payload.put_f64_le(s.uptime_secs);
            payload.put_f64_le(s.events_per_sec);
            payload.put_f64_le(s.mean_batch_size);
        }
        Response::Error { code, trip, retry_after_ms, detail } => {
            payload.put_u8(TAG_ERROR);
            payload.put_u8(code.to_byte());
            match trip {
                Some(id) => {
                    payload.put_u8(1);
                    payload.put_u64_le(*id);
                }
                None => payload.put_u8(0),
            }
            match retry_after_ms {
                Some(ms) => {
                    payload.put_u8(1);
                    payload.put_u64_le(*ms);
                }
                None => payload.put_u8(0),
            }
            // Truncate over-long details at a char boundary so the frame
            // always fits the decoder's cap.
            let mut cut = detail.len().min(MAX_ERROR_DETAIL);
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            payload.put_u16_le(cut as u16);
            payload.put_slice(&detail.as_bytes()[..cut]);
        }
        Response::Snapshot { image } => {
            // The image is the remainder of the payload: the envelope's
            // own length prefix already delimits it exactly.
            payload.put_u8(TAG_SNAPSHOT);
            payload.put_slice(image);
        }
        Response::Metrics(snapshot) => {
            // Same remainder-is-the-blob layout as Snapshot; the TADM
            // codec is canonical, so this frame re-encodes byte-for-byte.
            payload.put_u8(TAG_METRICS);
            payload.put_slice(&snapshot_to_bytes(snapshot));
        }
        Response::PolicyNotice { id, action, seg } => {
            payload.put_u8(TAG_POLICY_NOTICE);
            payload.put_u64_le(*id);
            payload.put_u8(action.wire_byte());
            match seg {
                Some(seg) => {
                    payload.put_u8(1);
                    payload.put_u32_le(*seg);
                }
                None => payload.put_u8(0),
            }
        }
        Response::Delta { delta } => {
            payload.put_u8(TAG_DELTA);
            payload.put_slice(delta);
        }
        Response::Installed { sessions } => {
            payload.put_u8(TAG_INSTALLED);
            payload.put_u64_le(*sessions);
        }
        Response::Drained { image } => {
            payload.put_u8(TAG_DRAINED);
            payload.put_slice(image);
        }
    }
    seal_envelope(FRAME_MAGIC, FRAME_VERSION, payload.freeze())
}

/// Decodes one request frame. The whole input must be one frame.
///
/// # Errors
/// Returns the [`FrameError`] naming what failed; response tags come back
/// as [`FrameError::UnexpectedKind`]. Never panics.
pub fn request_from_bytes(bytes: Bytes) -> Result<Request, FrameError> {
    let mut payload = open_envelope(FRAME_MAGIC, FRAME_VERSION, bytes)?;
    if payload.remaining() < 1 {
        return Err(FrameError::Truncated("frame tag"));
    }
    let tag = payload.get_u8();
    let req = match tag {
        TAG_TRIP_START => {
            if payload.remaining() < 8 + 4 + 4 + 1 {
                return Err(FrameError::Truncated("trip-start body"));
            }
            Request::TripStart {
                id: payload.get_u64_le(),
                source: payload.get_u32_le(),
                dest: payload.get_u32_le(),
                time_slot: payload.get_u8(),
            }
        }
        TAG_SEGMENT => {
            if payload.remaining() < 8 + 4 {
                return Err(FrameError::Truncated("segment body"));
            }
            Request::Segment { id: payload.get_u64_le(), seg: payload.get_u32_le() }
        }
        TAG_TRIP_END => {
            if payload.remaining() < 8 {
                return Err(FrameError::Truncated("trip-end body"));
            }
            Request::TripEnd { id: payload.get_u64_le() }
        }
        TAG_FLUSH => Request::Flush,
        TAG_SNAPSHOT_REQUEST => Request::SnapshotRequest,
        TAG_METRICS_REQUEST => Request::MetricsRequest,
        TAG_DELTA_REQUEST => Request::DeltaRequest,
        TAG_INSTALL => {
            let len = payload.remaining();
            Request::Install { image: payload.copy_to_bytes(len) }
        }
        TAG_DRAIN => Request::Drain,
        TAG_SCORE | TAG_TRIP_COMPLETE | TAG_STATS | TAG_ERROR | TAG_SNAPSHOT | TAG_METRICS
        | TAG_POLICY_NOTICE | TAG_DELTA | TAG_INSTALLED | TAG_DRAINED => {
            return Err(FrameError::UnexpectedKind { expected: "request", got: "response" });
        }
        other => return Err(FrameError::UnknownTag(other)),
    };
    if payload.remaining() != 0 {
        return Err(FrameError::Malformed("trailing payload bytes"));
    }
    Ok(req)
}

/// Decodes one response frame. The whole input must be one frame.
///
/// # Errors
/// Returns the [`FrameError`] naming what failed; request tags come back
/// as [`FrameError::UnexpectedKind`]. Never panics.
pub fn response_from_bytes(bytes: Bytes) -> Result<Response, FrameError> {
    let mut payload = open_envelope(FRAME_MAGIC, FRAME_VERSION, bytes)?;
    if payload.remaining() < 1 {
        return Err(FrameError::Truncated("frame tag"));
    }
    let tag = payload.get_u8();
    let resp = match tag {
        TAG_SCORE => {
            if payload.remaining() < 8 + 4 + 4 + 8 * 3 {
                return Err(FrameError::Truncated("score body"));
            }
            Response::Score(ScoreUpdate {
                id: payload.get_u64_le(),
                seq: payload.get_u32_le(),
                segment: payload.get_u32_le(),
                score: payload.get_f64_le(),
                nll: payload.get_f64_le(),
                log_scale: payload.get_f64_le(),
            })
        }
        TAG_TRIP_COMPLETE => {
            if payload.remaining() < 8 + 1 + 8 * 3 + 4 {
                return Err(FrameError::Truncated("trip-complete body"));
            }
            let id = payload.get_u64_le();
            let completion = completion_from_byte(payload.get_u8())
                .ok_or(FrameError::Malformed("completion code"))?;
            let score = payload.get_f64_le();
            let likelihood_nll = payload.get_f64_le();
            let scale_log_sum = payload.get_f64_le();
            let trace_len = payload.get_u32_le() as usize;
            if trace_len.checked_mul(20).is_none_or(|need| payload.remaining() < need) {
                return Err(FrameError::Truncated("trace entries"));
            }
            let mut trace = Vec::with_capacity(trace_len);
            for _ in 0..trace_len {
                let segment = payload.get_u32_le();
                let nll = payload.get_f64_le();
                let log_scale = payload.get_f64_le();
                trace.push(SegmentTrace { segment, nll, log_scale });
            }
            Response::TripComplete(TripComplete {
                id,
                completion,
                score,
                likelihood_nll,
                scale_log_sum,
                trace,
            })
        }
        TAG_STATS => {
            if payload.remaining() < 8 * 11 + 8 * 3 {
                return Err(FrameError::Truncated("stats body"));
            }
            Response::Stats(FleetSnapshot {
                events_ingested: payload.get_u64_le(),
                segments_scored: payload.get_u64_le(),
                trips_started: payload.get_u64_le(),
                trips_completed: payload.get_u64_le(),
                evictions_ttl: payload.get_u64_le(),
                evictions_lru: payload.get_u64_le(),
                rejected: payload.get_u64_le(),
                off_graph_hits: payload.get_u64_le(),
                batches: payload.get_u64_le(),
                active_sessions: payload.get_u64_le(),
                sessions_restored: payload.get_u64_le(),
                uptime_secs: payload.get_f64_le(),
                events_per_sec: payload.get_f64_le(),
                mean_batch_size: payload.get_f64_le(),
            })
        }
        TAG_ERROR => {
            if payload.remaining() < 1 + 1 {
                return Err(FrameError::Truncated("error body"));
            }
            let code = ErrorCode::from_byte(payload.get_u8())
                .ok_or(FrameError::Malformed("error code"))?;
            let trip = match payload.get_u8() {
                0 => None,
                1 => {
                    if payload.remaining() < 8 {
                        return Err(FrameError::Truncated("error trip id"));
                    }
                    Some(payload.get_u64_le())
                }
                _ => return Err(FrameError::Malformed("error trip flag")),
            };
            if payload.remaining() < 1 {
                return Err(FrameError::Truncated("error retry flag"));
            }
            let retry_after_ms = match payload.get_u8() {
                0 => None,
                1 => {
                    if payload.remaining() < 8 {
                        return Err(FrameError::Truncated("error retry-after"));
                    }
                    Some(payload.get_u64_le())
                }
                _ => return Err(FrameError::Malformed("error retry flag")),
            };
            if payload.remaining() < 2 {
                return Err(FrameError::Truncated("error detail length"));
            }
            let dlen = payload.get_u16_le() as usize;
            if dlen > MAX_ERROR_DETAIL {
                return Err(FrameError::Malformed("error detail too long"));
            }
            if payload.remaining() < dlen {
                return Err(FrameError::Truncated("error detail"));
            }
            let raw = payload.copy_to_bytes(dlen);
            let detail = std::str::from_utf8(raw.as_ref())
                .map_err(|_| FrameError::Malformed("error detail not UTF-8"))?
                .to_string();
            Response::Error { code, trip, retry_after_ms, detail }
        }
        TAG_SNAPSHOT => {
            let len = payload.remaining();
            Response::Snapshot { image: payload.copy_to_bytes(len) }
        }
        TAG_METRICS => {
            let len = payload.remaining();
            let blob = payload.copy_to_bytes(len);
            Response::Metrics(
                snapshot_from_bytes(blob).map_err(|_| FrameError::Malformed("metrics blob"))?,
            )
        }
        TAG_POLICY_NOTICE => {
            if payload.remaining() < 8 + 1 + 1 {
                return Err(FrameError::Truncated("policy-notice body"));
            }
            let id = payload.get_u64_le();
            let action = PolicyAction::from_wire_byte(payload.get_u8())
                .ok_or(FrameError::Malformed("policy action"))?;
            let seg = match payload.get_u8() {
                0 => None,
                1 => {
                    if payload.remaining() < 4 {
                        return Err(FrameError::Truncated("policy-notice segment"));
                    }
                    Some(payload.get_u32_le())
                }
                _ => return Err(FrameError::Malformed("policy-notice segment flag")),
            };
            Response::PolicyNotice { id, action, seg }
        }
        TAG_DELTA => {
            let len = payload.remaining();
            Response::Delta { delta: payload.copy_to_bytes(len) }
        }
        TAG_INSTALLED => {
            if payload.remaining() < 8 {
                return Err(FrameError::Truncated("installed body"));
            }
            Response::Installed { sessions: payload.get_u64_le() }
        }
        TAG_DRAINED => {
            let len = payload.remaining();
            Response::Drained { image: payload.copy_to_bytes(len) }
        }
        TAG_TRIP_START | TAG_SEGMENT | TAG_TRIP_END | TAG_FLUSH | TAG_SNAPSHOT_REQUEST
        | TAG_METRICS_REQUEST | TAG_DELTA_REQUEST | TAG_INSTALL | TAG_DRAIN => {
            return Err(FrameError::UnexpectedKind { expected: "response", got: "request" });
        }
        other => return Err(FrameError::UnknownTag(other)),
    };
    if payload.remaining() != 0 {
        return Err(FrameError::Malformed("trailing payload bytes"));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_requests() -> Vec<Request> {
        vec![
            Request::TripStart { id: 7, source: 3, dest: 11, time_slot: 5 },
            Request::Segment { id: 7, seg: 42 },
            Request::TripEnd { id: 7 },
            Request::Flush,
            Request::SnapshotRequest,
            Request::MetricsRequest,
            Request::DeltaRequest,
            Request::Install { image: Bytes::from(vec![9u8, 8, 7]) },
            Request::Install { image: Bytes::from(Vec::new()) },
            Request::Drain,
        ]
    }

    pub(crate) fn sample_metrics() -> MetricsSnapshot {
        let reg = tad_metrics::Registry::new();
        reg.counter("net.backpressure_replies").add(3);
        reg.gauge("serve.ingest_inflight").add(-2);
        let h = reg.histogram("serve.score_latency_ns");
        h.record(900);
        h.record_n(125_000, 64);
        reg.snapshot()
    }

    pub(crate) fn sample_responses() -> Vec<Response> {
        vec![
            Response::Score(ScoreUpdate {
                id: 7,
                seq: 3,
                segment: 42,
                score: 1.25,
                nll: 0.5,
                log_scale: -0.25,
            }),
            Response::TripComplete(TripComplete {
                id: 7,
                completion: Completion::Ended,
                score: 2.5,
                likelihood_nll: 3.0,
                scale_log_sum: 0.5,
                trace: vec![
                    SegmentTrace { segment: 1, nll: 0.0, log_scale: 0.1 },
                    SegmentTrace { segment: 2, nll: 1.5, log_scale: 0.2 },
                ],
            }),
            Response::Stats(FleetSnapshot {
                events_ingested: 1,
                segments_scored: 2,
                trips_started: 3,
                trips_completed: 4,
                evictions_ttl: 5,
                evictions_lru: 6,
                rejected: 7,
                off_graph_hits: 8,
                batches: 9,
                active_sessions: 10,
                sessions_restored: 11,
                uptime_secs: 1.5,
                events_per_sec: 2.5,
                mean_batch_size: 3.5,
            }),
            Response::Error {
                code: ErrorCode::Backpressure,
                trip: Some(7),
                retry_after_ms: None,
                detail: "queue full".to_string(),
            },
            Response::Error {
                code: ErrorCode::EngineClosed,
                trip: None,
                retry_after_ms: None,
                detail: String::new(),
            },
            Response::Error {
                code: ErrorCode::Throttled,
                trip: None,
                retry_after_ms: Some(125),
                detail: "rate limit".to_string(),
            },
            Response::Error {
                code: ErrorCode::Throttled,
                trip: Some(9),
                retry_after_ms: Some(50),
                detail: "admission shed".to_string(),
            },
            Response::Error {
                code: ErrorCode::ConnLimit,
                trip: None,
                retry_after_ms: None,
                detail: "connection quota".to_string(),
            },
            Response::Error {
                code: ErrorCode::IdleTimeout,
                trip: None,
                retry_after_ms: None,
                detail: String::new(),
            },
            Response::Snapshot { image: Bytes::from(vec![1u8, 2, 3, 4]) },
            Response::Metrics(sample_metrics()),
            Response::Metrics(MetricsSnapshot::default()),
            Response::PolicyNotice { id: 7, action: PolicyAction::Reordered, seg: Some(42) },
            Response::PolicyNotice {
                id: 9,
                action: PolicyAction::QuarantinedUnknownTrip,
                seg: None,
            },
            Response::Delta { delta: Bytes::from(vec![5u8, 6, 7, 8]) },
            Response::Installed { sessions: 42 },
            Response::Drained { image: Bytes::from(vec![1u8, 3, 5]) },
            Response::Drained { image: Bytes::from(Vec::new()) },
        ]
    }

    #[test]
    fn every_request_roundtrips() {
        for req in sample_requests() {
            let blob = request_to_bytes(&req);
            assert_eq!(request_from_bytes(blob.clone()).expect("decode"), req);
            // Canonical encoding.
            assert_eq!(request_to_bytes(&request_from_bytes(blob.clone()).unwrap()), blob);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        for resp in sample_responses() {
            let blob = response_to_bytes(&resp);
            let decoded = response_from_bytes(blob.clone()).expect("decode");
            assert_eq!(decoded, resp);
            assert_eq!(response_to_bytes(&decoded).to_vec(), blob.to_vec());
        }
    }

    #[test]
    fn direction_confusion_is_typed() {
        let req = request_to_bytes(&Request::Flush);
        assert_eq!(
            response_from_bytes(req),
            Err(FrameError::UnexpectedKind { expected: "response", got: "request" })
        );
        let resp = response_to_bytes(&Response::Error {
            code: ErrorCode::Rejected,
            trip: None,
            retry_after_ms: None,
            detail: String::new(),
        });
        assert_eq!(
            request_from_bytes(resp),
            Err(FrameError::UnexpectedKind { expected: "request", got: "response" })
        );
    }

    #[test]
    fn corruption_battery_never_panics() {
        let mut blobs: Vec<Vec<u8>> =
            sample_requests().iter().map(|r| request_to_bytes(r).to_vec()).collect();
        blobs.extend(sample_responses().iter().map(|r| response_to_bytes(r).to_vec()));
        for blob in blobs {
            for cut in 0..blob.len() {
                assert!(request_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");
                assert!(response_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");
            }
            for byte in 0..blob.len() {
                for bit in 0..8u32 {
                    let mut raw = blob.clone();
                    raw[byte] ^= 1 << bit;
                    // Either decoder must survive (and may legitimately
                    // still accept a same-direction decode only if the
                    // flip cancels out, which the checksum prevents).
                    assert!(
                        request_from_bytes(raw.clone().into()).is_err(),
                        "byte={byte} bit={bit}"
                    );
                    assert!(response_from_bytes(raw.into()).is_err(), "byte={byte} bit={bit}");
                }
            }
        }
    }

    #[test]
    fn huge_crafted_lengths_error_instead_of_panicking() {
        // Envelope payload length near u64::MAX.
        let mut raw = Vec::new();
        raw.extend_from_slice(FRAME_MAGIC);
        raw.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        raw.extend_from_slice(&u64::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        assert_eq!(request_from_bytes(raw.into()), Err(FrameError::Truncated("payload")));
        // A checksummed trip-complete claiming a near-u32::MAX trace.
        let mut payload = BytesMut::new();
        payload.put_u8(TAG_TRIP_COMPLETE);
        payload.put_u64_le(1);
        payload.put_u8(0);
        payload.put_f64_le(0.0);
        payload.put_f64_le(0.0);
        payload.put_f64_le(0.0);
        payload.put_u32_le(u32::MAX);
        let blob = seal_envelope(FRAME_MAGIC, FRAME_VERSION, payload.freeze());
        assert_eq!(response_from_bytes(blob), Err(FrameError::Truncated("trace entries")));
        // A snapshot body has no inner length to lie about: it is exactly
        // the payload remainder, so even an empty image decodes cleanly.
        let mut payload = BytesMut::new();
        payload.put_u8(TAG_SNAPSHOT);
        let blob = seal_envelope(FRAME_MAGIC, FRAME_VERSION, payload.freeze());
        assert_eq!(
            response_from_bytes(blob),
            Ok(Response::Snapshot { image: Bytes::from(Vec::new()) })
        );
    }

    #[test]
    fn long_error_details_truncate_at_char_boundaries() {
        // 600 two-byte chars: the encoder must cut at <= 512 bytes on a
        // boundary and the result must still decode.
        let detail = "é".repeat(600);
        let resp =
            Response::Error { code: ErrorCode::BadFrame, trip: None, retry_after_ms: None, detail };
        let decoded = response_from_bytes(response_to_bytes(&resp)).expect("decode");
        match decoded {
            Response::Error { detail, .. } => {
                assert!(detail.len() <= MAX_ERROR_DETAIL);
                assert!(detail.chars().all(|c| c == 'é'));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn request_event_conversion_roundtrips() {
        let ev = Event::TripStart { id: 9, source: 1, dest: 2, time_slot: 3 };
        assert_eq!(Request::from(ev).to_event(), Some(ev));
        assert_eq!(Request::Flush.to_event(), None);
        assert_eq!(Request::SnapshotRequest.to_event(), None);
    }
}
