//! Building blocks of the readiness-driven ingest event loop: the
//! per-connection nonblocking state machine ([`Conn`]), the readiness
//! abstraction ([`EventSource`]) that lets the whole loop run against
//! scripted in-memory I/O in tests, and the production
//! epoll/poll-backed source ([`PollSource`]).
//!
//! The design splits "what the kernel says" from "what the server does
//! with it". An [`EventSource`] produces [`Readiness`] reports per tick;
//! [`crate::EventLoop`] turns them into reads, frame reassembly, cohort
//! submission, and writes, all through [`Conn`] — which is generic over
//! any `Read + Write` transport. Production instantiates the loop with
//! [`PollSource`] + `TcpStream`; the deterministic test harness
//! instantiates it with a scripted source and in-memory streams and
//! replays exact readiness schedules (partial reads, short writes,
//! hostile interleavings) that real sockets cannot be made to produce on
//! demand.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use polling::{Event, Events, Poller};

use crate::wire::{FrameAssembler, RecvError};

/// What one descriptor reported in one event-loop tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// Connection key, as passed to [`EventSource::register`].
    pub key: u64,
    /// The transport can (probably) produce bytes without blocking.
    pub readable: bool,
    /// The transport can (probably) accept bytes without blocking.
    pub writable: bool,
}

/// The readiness a connection currently wants reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report read readiness (off while a slow consumer is throttled or
    /// the connection is draining toward close).
    pub readable: bool,
    /// Report write readiness (on only while a write backlog exists).
    pub writable: bool,
}

/// A source of readiness events driving one event-loop worker — the
/// kernel poller in production, a scripted schedule in the deterministic
/// test harness. Generic over the transport type so registration can
/// reach the underlying descriptor (or ignore it, for in-memory
/// transports).
pub trait EventSource<T> {
    /// Starts reporting readiness for `io` under `key`.
    ///
    /// # Errors
    /// Registration with the OS failed; the connection is dropped.
    fn register(&mut self, key: u64, io: &T, interest: Interest) -> std::io::Result<()>;

    /// Changes what is reported for an already-registered connection.
    ///
    /// # Errors
    /// The OS rejected the update; the connection is dropped.
    fn reregister(&mut self, key: u64, io: &T, interest: Interest) -> std::io::Result<()>;

    /// Stops reporting readiness for `io`. Must be called before the
    /// transport is closed.
    ///
    /// # Errors
    /// The OS rejected the removal (the connection is closed regardless).
    fn deregister(&mut self, key: u64, io: &T) -> std::io::Result<()>;

    /// Blocks until readiness (or a wake) is available and fills `out`.
    /// `Ok(false)` means the source is exhausted — a scripted schedule
    /// ran out — and the loop should stop. A bare wake legitimately
    /// fills nothing.
    ///
    /// `timeout` bounds the wait: the loop passes one whenever it has
    /// time-driven work pending (idle-connection reaping, throttled
    /// connections waiting on token refill) so those fire even on a
    /// connection set producing no I/O. `None` means wait indefinitely.
    /// Returning on timeout with an empty `out` is a legitimate tick.
    /// Scripted sources may ignore it — their schedule *is* the clock.
    ///
    /// # Errors
    /// The wait itself failed; the loop stops.
    fn wait(
        &mut self,
        out: &mut Vec<Readiness>,
        timeout: Option<Duration>,
    ) -> std::io::Result<bool>;

    /// Hands over transports injected from outside the loop (the acceptor
    /// thread, in production) since the last tick. Defaults to none.
    fn accept_injected(&mut self) -> Vec<T> {
        Vec::new()
    }

    /// A thread-safe closure other threads call to make [`EventSource::wait`]
    /// return promptly (response deliverers marking a connection dirty).
    /// Defaults to a no-op — right for single-threaded scripted sources,
    /// whose schedule already decides when the loop runs.
    fn wake_handle(&self) -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(|| {})
    }
}

/// Per-connection nonblocking state machine: incremental frame
/// reassembly on the read side, a positioned write buffer on the write
/// side. Generic over the transport so the deterministic harness can
/// drive it with scripted in-memory streams; production uses
/// `Conn<TcpStream>` with the socket in nonblocking mode.
#[derive(Debug)]
pub struct Conn<T> {
    io: T,
    asm: FrameAssembler,
    wbuf: Vec<u8>,
    /// First unwritten byte of `wbuf` (compacted lazily).
    wpos: usize,
}

/// Why [`Conn::read_frames`] stopped consuming bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// The transport has no more bytes right now; wait for readiness.
    WouldBlock,
    /// The per-tick read budget is spent; more bytes may remain (a
    /// level-triggered source re-reports them next tick, preserving
    /// fairness across connections).
    BudgetSpent,
    /// Clean frame-aligned end of stream.
    Eof,
}

/// Size of the stack-free read chunk (amortised across a connection's
/// lifetime).
const READ_CHUNK: usize = 16 << 10;

/// Compact the write buffer once its dead prefix crosses this.
const WRITE_COMPACT_AT: usize = 64 << 10;

impl<T: Read + Write> Conn<T> {
    /// Wraps a transport (already nonblocking, for real sockets) with an
    /// assembler refusing frames over `max_frame`.
    pub fn new(io: T, max_frame: usize) -> Conn<T> {
        Conn { io, asm: FrameAssembler::new(max_frame), wbuf: Vec::new(), wpos: 0 }
    }

    /// The transport, for registration with an [`EventSource`].
    pub fn io(&self) -> &T {
        &self.io
    }

    /// Reads until the transport would block, `budget` bytes were
    /// consumed, or EOF; every frame completed along the way is appended
    /// to `out`.
    ///
    /// # Errors
    /// [`RecvError::Io`] for transport failures — including an EOF while
    /// a partial frame is buffered, which is a peer vanishing mid-frame —
    /// and [`RecvError::Frame`] the moment buffered bytes prove the
    /// stream hostile. Frames already pushed to `out` before the error
    /// are valid and must still be handled by the caller.
    pub fn read_frames(
        &mut self,
        budget: usize,
        out: &mut Vec<Bytes>,
    ) -> Result<ReadStatus, RecvError> {
        let mut chunk = [0u8; READ_CHUNK];
        let mut consumed = 0usize;
        loop {
            if consumed >= budget {
                return Ok(ReadStatus::BudgetSpent);
            }
            let want = READ_CHUNK.min(budget - consumed);
            match self.io.read(&mut chunk[..want]) {
                Ok(0) => {
                    if self.asm.has_partial() {
                        return Err(RecvError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "peer closed mid-frame",
                        )));
                    }
                    return Ok(ReadStatus::Eof);
                }
                Ok(n) => {
                    consumed += n;
                    self.asm.feed(&chunk[..n]);
                    while let Some(frame) = self.asm.next_frame()? {
                        out.push(frame);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(ReadStatus::WouldBlock)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }

    /// Appends already-serialised frame bytes to the write backlog (no
    /// I/O; call [`Conn::flush_writes`] to move them to the transport).
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= WRITE_COMPACT_AT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        self.wbuf.extend_from_slice(bytes);
    }

    /// Writes backlog to the transport until it would block or the
    /// backlog drains. `Ok(true)` means fully drained.
    ///
    /// # Errors
    /// Transport failures (a zero-byte write is reported as
    /// [`std::io::ErrorKind::WriteZero`]); the connection is dead.
    pub fn flush_writes(&mut self) -> std::io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.io.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "transport accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Bytes queued but not yet accepted by the transport.
    pub fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether a write backlog exists (drives write-interest
    /// registration).
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// Shared state behind a [`PollSource`] and its [`PollWaker`]s.
struct PollShared {
    poller: Poller,
    injected: Mutex<Vec<TcpStream>>,
}

/// The production [`EventSource`]: kernel readiness via the vendored
/// `polling` wrapper (epoll on Linux, poll elsewhere), with an injection
/// queue the acceptor thread uses to hand new sockets to the worker.
pub struct PollSource {
    shared: Arc<PollShared>,
    events: Events,
}

/// A cheap cloneable handle for waking a [`PollSource`]'s worker from
/// other threads — the acceptor (to inject a socket) and response
/// deliverers (to get a dirty connection flushed).
#[derive(Clone)]
pub struct PollWaker {
    shared: Arc<PollShared>,
}

impl PollSource {
    /// Creates a source with its own kernel poller.
    ///
    /// # Errors
    /// The OS refused to create the poller.
    pub fn new() -> std::io::Result<PollSource> {
        Ok(PollSource {
            shared: Arc::new(PollShared {
                poller: Poller::new()?,
                injected: Mutex::new(Vec::new()),
            }),
            events: Events::new(),
        })
    }

    /// A waker for this source.
    pub fn waker(&self) -> PollWaker {
        PollWaker { shared: Arc::clone(&self.shared) }
    }
}

impl PollWaker {
    /// Makes the worker's current (or next) wait return promptly.
    pub fn wake(&self) {
        let _ = self.shared.poller.notify();
    }

    /// Queues a freshly accepted socket for the worker to adopt, and
    /// wakes it.
    pub fn inject(&self, io: TcpStream) {
        self.shared.injected.lock().expect("inject queue").push(io);
        self.wake();
    }
}

fn interest_event(key: u64, interest: Interest) -> Event {
    Event { key: key as usize, readable: interest.readable, writable: interest.writable }
}

impl EventSource<TcpStream> for PollSource {
    fn register(&mut self, key: u64, io: &TcpStream, interest: Interest) -> std::io::Result<()> {
        self.shared.poller.add(io, interest_event(key, interest))
    }

    fn reregister(&mut self, key: u64, io: &TcpStream, interest: Interest) -> std::io::Result<()> {
        self.shared.poller.modify(io, interest_event(key, interest))
    }

    fn deregister(&mut self, _key: u64, io: &TcpStream) -> std::io::Result<()> {
        self.shared.poller.delete(io)
    }

    fn wait(
        &mut self,
        out: &mut Vec<Readiness>,
        timeout: Option<Duration>,
    ) -> std::io::Result<bool> {
        out.clear();
        self.shared.poller.wait(&mut self.events, timeout)?;
        for ev in self.events.iter() {
            out.push(Readiness {
                key: ev.key as u64,
                readable: ev.readable,
                writable: ev.writable,
            });
        }
        Ok(true)
    }

    fn accept_injected(&mut self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.shared.injected.lock().expect("inject queue"))
    }

    fn wake_handle(&self) -> Arc<dyn Fn() + Send + Sync> {
        let waker = self.waker();
        Arc::new(move || waker.wake())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{request_from_bytes, request_to_bytes, Request};
    use std::collections::VecDeque;

    /// Minimal scripted transport for the unit tier (the full harness
    /// lives in the repository's tests/common).
    struct Scripted {
        reads: VecDeque<Option<Vec<u8>>>, // None = WouldBlock, empty deque = EOF
        written: Vec<u8>,
        write_cap: usize,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.reads.front_mut() {
                None => Ok(0),
                Some(None) => {
                    self.reads.pop_front();
                    Err(std::io::ErrorKind::WouldBlock.into())
                }
                Some(Some(chunk)) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.reads.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.write_cap);
            if n == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_reads_reassemble_and_budget_is_respected() {
        let req = Request::Segment { id: 9, seg: 4 };
        let blob = request_to_bytes(&req).to_vec();
        // One byte per readiness "tick", a WouldBlock between each.
        let mut reads = VecDeque::new();
        for b in &blob {
            reads.push_back(Some(vec![*b]));
            reads.push_back(None);
        }
        let mut conn =
            Conn::new(Scripted { reads, written: Vec::new(), write_cap: usize::MAX }, 1024);
        let mut frames = Vec::new();
        let mut spins = 0;
        while frames.is_empty() {
            match conn.read_frames(usize::MAX, &mut frames).expect("clean stream") {
                ReadStatus::WouldBlock => spins += 1,
                ReadStatus::Eof => panic!("eof before the frame completed"),
                ReadStatus::BudgetSpent => unreachable!("unbounded budget"),
            }
        }
        assert_eq!(request_from_bytes(frames.pop().unwrap()).expect("decodes"), req);
        assert!(spins > 0, "the scripted WouldBlocks were exercised");

        // Budget: a 1-byte budget consumes at most one byte per call.
        let mut reads = VecDeque::new();
        reads.push_back(Some(blob.clone()));
        let mut conn =
            Conn::new(Scripted { reads, written: Vec::new(), write_cap: usize::MAX }, 1024);
        let mut frames = Vec::new();
        for _ in 0..blob.len() {
            assert!(frames.is_empty());
            assert_eq!(conn.read_frames(1, &mut frames).expect("clean"), ReadStatus::BudgetSpent);
        }
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn short_writes_drain_bit_identically() {
        let req = Request::TripStart { id: 1, source: 2, dest: 3, time_slot: 4 };
        let blob = request_to_bytes(&req).to_vec();
        for cap in 1..=blob.len() {
            let mut conn = Conn::new(
                Scripted { reads: VecDeque::new(), written: Vec::new(), write_cap: cap },
                1024,
            );
            conn.queue_bytes(&blob);
            assert!(conn.wants_write());
            while !conn.flush_writes().expect("transport accepts") {}
            assert!(!conn.wants_write());
            assert_eq!(conn.io().written, blob, "cap={cap}");
        }
    }

    #[test]
    fn eof_mid_frame_is_a_transport_error() {
        let blob = request_to_bytes(&Request::Flush).to_vec();
        let mut reads = VecDeque::new();
        reads.push_back(Some(blob[..blob.len() - 1].to_vec()));
        let mut conn =
            Conn::new(Scripted { reads, written: Vec::new(), write_cap: usize::MAX }, 1024);
        let mut frames = Vec::new();
        match conn.read_frames(usize::MAX, &mut frames) {
            Err(RecvError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
        assert!(frames.is_empty());
    }
}
