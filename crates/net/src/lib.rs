//! # tad-net
//!
//! Network ingest front-end for the `tad-serve` fleet engine: a versioned,
//! length-prefixed binary wire protocol (`TADN`), a concurrent TCP server,
//! and a blocking client — the layer that turns the CausalTAD reproduction
//! from a library into a deployable *online* detection service, where many
//! producers stream trip telemetry into one scoring process and get
//! per-segment anomaly scores pushed back as the trips unfold.
//!
//! ## Wire format
//!
//! Every frame is one standard workspace envelope (see
//! [`causaltad::envelope`]), little-endian throughout:
//!
//! | Offset | Size | Field |
//! |---|---|---|
//! | 0 | 4 | magic `TADN` |
//! | 4 | 2 | version (`u16`, currently 1) |
//! | 6 | 8 | payload length (`u64`) |
//! | 14 | n | payload: tag byte + body |
//! | 14+n | 8 | FNV-1a 64 checksum of the payload |
//!
//! Requests (client→server) use tags `0x01..=0x0F`:
//! [`Request::TripStart`] (0x01), [`Request::Segment`] (0x02),
//! [`Request::TripEnd`] (0x03), [`Request::Flush`] (0x04),
//! [`Request::SnapshotRequest`] (0x05), [`Request::MetricsRequest`]
//! (0x06), [`Request::DeltaRequest`] (0x07), [`Request::Install`]
//! (0x08), [`Request::Drain`] (0x09). Responses (server→client) use
//! `0x10..=0x1F`: [`Response::Score`] (0x10), [`Response::TripComplete`]
//! (0x11), [`Response::Stats`] (0x12), [`Response::Error`] (0x13),
//! [`Response::Snapshot`] (0x14), [`Response::Metrics`] (0x15),
//! [`Response::PolicyNotice`] (0x16), [`Response::Delta`] (0x17),
//! [`Response::Installed`] (0x18), [`Response::Drained`] (0x19).
//! Decoding is total — hostile bytes produce typed [`FrameError`]s, never
//! panics — and readers refuse frames longer than their cap *before*
//! allocating.
//!
//! ## Semantics
//!
//! * Ingest is **pipelined**: producers fire `TripStart`/`Segment`/
//!   `TripEnd` without waiting; the server pushes a `Score` frame per
//!   scored segment (in per-trip order) and a `TripComplete` when the
//!   trip leaves the engine, routed to the connection that started the
//!   trip.
//! * **Backpressure is explicit**: when the engine's bounded ingest queue
//!   is full, the event is *not* buffered server-side — the producer gets
//!   [`ErrorCode::Backpressure`] naming the trip and re-sends it before
//!   any later event for that trip (see the pacing contract on
//!   [`ErrorCode::Backpressure`]).
//! * `Flush` is a **quiesce barrier**: its `Stats` reply is sent only
//!   after everything accepted earlier has been scored and its responses
//!   queued ahead — the hook that makes network scoring testably
//!   deterministic.
//! * `SnapshotRequest` serves a whole [`tad_serve::FleetImage`] over the
//!   wire for **remote warm restart**: feed the blob to
//!   [`NetServerBuilder::resume`] on another host and scoring continues
//!   bit-identically.
//! * `MetricsRequest` serves the server's whole
//!   [`tad_metrics::MetricsSnapshot`] — latency histograms and counters
//!   for the engine (`serve.*`) and the network layer (`net.*`), one
//!   shared registry — so an operator (or the `tad-router` fan-in, which
//!   merges every backend's reply into one fleet view) scrapes a single
//!   frame.
//! * The **availability tier** speaks three admin barriers:
//!   `DeltaRequest` serves the next increment of the engine's checkpoint
//!   chain (a `TADD` blob; see [`tad_serve::FleetDelta`]), `Install`
//!   seeds a *running* engine with a fleet image (failover restore /
//!   handoff target), and `Drain` captures-and-removes every live
//!   session without firing completions (handoff source). The [`Client`]
//!   can also reconnect through transient outages under a bounded
//!   [`RetryPolicy`] ([`Client::with_retry`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tad_net::{Client, NetServer, Response};
//! # let model: causaltad::CausalTad = unimplemented!();
//!
//! let server = NetServer::builder(Arc::new(model)).bind("127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.trip_start(1, 0, 9, 3).unwrap();
//! client.segment(1, 0).unwrap();
//! client.trip_end(1).unwrap();
//! let stats = client.flush().unwrap(); // barrier: everything above is scored
//! while let Some(resp) = client.try_recv() {
//!     if let Response::Score(s) = resp {
//!         println!("trip {} segment {} score {:.3}", s.id, s.segment, s.score);
//!     }
//! }
//! assert_eq!(stats.trips_completed, 1);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod client;
mod evloop;
mod frame;
mod server;
mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use evloop::{Conn, EventSource, Interest, PollSource, PollWaker, ReadStatus, Readiness};
pub use frame::{
    request_from_bytes, request_to_bytes, response_from_bytes, response_to_bytes, ErrorCode,
    FrameError, Request, Response, TripComplete, DEFAULT_MAX_FRAME, FRAME_MAGIC, FRAME_VERSION,
    MAX_ERROR_DETAIL,
};
pub use server::{
    widen_accept_backlog, ConnectionStats, EventLoop, IngestCore, NetConfig, NetError, NetServer,
    NetServerBuilder, NetStats,
};
pub use wire::{
    read_request, read_request_timed, read_response, write_request, write_response, FrameAssembler,
    RecvError,
};
