//! Blocking client for the `TADN` protocol: one reused TCP connection,
//! buffered pipelined writes, and a local queue for the asynchronous
//! responses that arrive between barriers.
//!
//! The protocol is pipelined: ingest requests (`trip_start` / `segment` /
//! `trip_end`) are fire-and-forget writes, and the server pushes
//! [`Response::Score`] / [`Response::TripComplete`] frames back whenever
//! its shards score something (plus [`Response::PolicyNotice`] frames
//! when the engine's ingest sanitization policies touch one of this
//! connection's trips). Two barrier calls give the stream
//! structure: [`Client::flush`] (everything sent so far is scored and its
//! responses received) and [`Client::snapshot`] (a fleet image for remote
//! warm restart). While waiting for a barrier reply the client parks
//! every other response in an internal queue, which [`Client::try_recv`]
//! and [`Client::recv`] drain.
//!
//! Writes are buffered and only flushed when a reply is needed (or by
//! [`Client::flush_writes`]), so a producer streaming thousands of
//! segment frames pays one syscall per batch, not per event.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use tad_metrics::MetricsSnapshot;
use tad_serve::{FleetSnapshot, TripId};

use crate::frame::{ErrorCode, FrameError, Request, Response, DEFAULT_MAX_FRAME};
use crate::wire::{read_response, write_request, RecvError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a response frame; the
    /// connection is no longer usable.
    Frame(FrameError),
    /// The server closed the connection while a reply was pending.
    Disconnected,
    /// No bytes arrived within the configured read timeout
    /// ([`Client::with_read_timeout`]) — the defence against a dead or
    /// wedged server hanging the blocking reader forever. The read
    /// position within a frame is unknown after a timeout, so the
    /// connection must be treated as unusable: reconnect rather than
    /// retry on it.
    Timeout,
    /// The server answered a barrier request with an error frame.
    Server {
        /// What the server reported.
        code: ErrorCode,
        /// The trip the failure concerned, when there was one.
        trip: Option<TripId>,
        /// Human-readable context from the server.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "wire protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Timeout => write!(f, "no response within the read timeout"),
            ClientError::Server { code, trip: Some(id), detail } if !detail.is_empty() => {
                write!(f, "server error for trip {id}: {code} ({detail})")
            }
            ClientError::Server { code, trip: Some(id), .. } => {
                write!(f, "server error for trip {id}: {code}")
            }
            ClientError::Server { code, detail, .. } if !detail.is_empty() => {
                write!(f, "server error: {code} ({detail})")
            }
            ClientError::Server { code, .. } => write!(f, "server error: {code}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// A blocking `TADN` client over one reused TCP connection. See the
/// module docs for the pipelining model.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    queue: VecDeque<Response>,
    max_frame_len: usize,
}

impl Client {
    /// Connects to a [`crate::NetServer`] (enables `TCP_NODELAY`).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
            queue: VecDeque::new(),
            max_frame_len: DEFAULT_MAX_FRAME,
        })
    }

    /// Raises (or lowers) the cap on incoming frame payloads — raise it
    /// when snapshots of very large fleets exceed the 64 MiB default.
    pub fn with_max_frame_len(mut self, max: usize) -> Client {
        self.max_frame_len = max;
        self
    }

    /// Bounds how long a blocking read ([`Client::flush`],
    /// [`Client::snapshot`], [`Client::recv`]) waits for the server
    /// before failing with [`ClientError::Timeout`]. Without one — the
    /// default — a dead or wedged server hangs the reader forever.
    ///
    /// `None` restores unbounded blocking. After a timeout fires the
    /// connection is desynchronized (the read may have stopped mid-frame)
    /// and must be replaced, so pick a timeout comfortably above the
    /// slowest expected barrier, not a retry interval.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the socket refuses the option (a zero
    /// duration, or a closed socket).
    pub fn with_read_timeout(self, timeout: Option<Duration>) -> Result<Client, ClientError> {
        self.reader.set_read_timeout(timeout)?;
        Ok(self)
    }

    /// Opens a scoring session for a trip (fire-and-forget; buffered).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn trip_start(
        &mut self,
        id: TripId,
        source: u32,
        dest: u32,
        time_slot: u8,
    ) -> Result<(), ClientError> {
        self.send(&Request::TripStart { id, source, dest, time_slot })
    }

    /// Streams one traversed road segment (fire-and-forget; buffered).
    /// The server will push a [`Response::Score`] back once scored.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn segment(&mut self, id: TripId, seg: u32) -> Result<(), ClientError> {
        self.send(&Request::Segment { id, seg })
    }

    /// Ends a trip (fire-and-forget; buffered). The server will push a
    /// [`Response::TripComplete`] back with the final score.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn trip_end(&mut self, id: TripId) -> Result<(), ClientError> {
        self.send(&Request::TripEnd { id })
    }

    /// Writes any request frame (fire-and-forget; buffered).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_request(&mut self.writer, req)?;
        Ok(())
    }

    /// Pushes buffered request frames to the socket without waiting for
    /// anything. Barrier calls do this implicitly.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the flush fails.
    pub fn flush_writes(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Quiesce barrier: sends [`Request::Flush`] and blocks until the
    /// server's [`Response::Stats`] reply. When this returns, every event
    /// accepted from this connection so far has been scored, and all its
    /// `Score` / `TripComplete` / backpressure responses are available
    /// through [`Client::try_recv`].
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the server reports the barrier failed
    /// (e.g. the engine shut down).
    pub fn flush(&mut self) -> Result<FleetSnapshot, ClientError> {
        self.send(&Request::Flush)?;
        self.flush_writes()?;
        loop {
            match self.read_one()? {
                Response::Stats(stats) => return Ok(stats),
                resp => self.queue_or_fail(resp)?,
            }
        }
    }

    /// Remote warm-restart capture: sends [`Request::SnapshotRequest`] and
    /// blocks until the serialized [`tad_serve::FleetImage`] arrives.
    /// Decode with [`tad_serve::image_from_bytes`] and feed to
    /// [`crate::NetServerBuilder::resume`] (or
    /// [`tad_serve::FleetEngine::restore`]) elsewhere.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the capture failed server-side.
    pub fn snapshot(&mut self) -> Result<Bytes, ClientError> {
        self.send(&Request::SnapshotRequest)?;
        self.flush_writes()?;
        loop {
            match self.read_one()? {
                Response::Snapshot { image } => return Ok(image),
                resp => self.queue_or_fail(resp)?,
            }
        }
    }

    /// Metrics barrier: sends [`Request::MetricsRequest`] and blocks until
    /// the server's [`Response::Metrics`] snapshot arrives. Against a
    /// single server this is the engine + net-layer registry; against a
    /// `tad-router` admin endpoint it is the fleet-wide merge of every
    /// live backend's snapshot plus the router's own `router.*` metrics.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the server reports a fatal error
    /// instead.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.send(&Request::MetricsRequest)?;
        self.flush_writes()?;
        loop {
            match self.read_one()? {
                Response::Metrics(snapshot) => return Ok(snapshot),
                resp => self.queue_or_fail(resp)?,
            }
        }
    }

    /// Pops the next already-received response, if any (never touches the
    /// socket).
    pub fn try_recv(&mut self) -> Option<Response> {
        self.queue.pop_front()
    }

    /// Pops the next response, reading from the socket (after pushing any
    /// buffered writes) when the local queue is empty. Blocks until a
    /// response arrives.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if let Some(resp) = self.queue.pop_front() {
            return Ok(resp);
        }
        self.flush_writes()?;
        self.read_one()
    }

    /// One blocking socket read. A timeout configured with
    /// [`Client::with_read_timeout`] surfaces as the typed
    /// [`ClientError::Timeout`] (the platform reports it as `WouldBlock`
    /// or `TimedOut` depending on the OS).
    fn read_one(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.reader, self.max_frame_len) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::Disconnected),
            Err(RecvError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(ClientError::Timeout)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Parks an out-of-band response while waiting for a barrier reply —
    /// except fatal connection-level error frames (no trip named, code
    /// beyond backpressure/reject), which fail the barrier itself. Errors
    /// that *name a trip* concern that trip, not the barrier — e.g. a
    /// router reporting one backend's loss while the rest of the fleet
    /// still answers — so they stay in the stream for the application,
    /// like backpressure and reject notices.
    fn queue_or_fail(&mut self, resp: Response) -> Result<(), ClientError> {
        match resp {
            Response::Error { code, trip: None, detail }
                if !matches!(code, ErrorCode::Backpressure | ErrorCode::Rejected) =>
            {
                Err(ClientError::Server { code, trip: None, detail })
            }
            other => {
                self.queue.push_back(other);
                Ok(())
            }
        }
    }
}
