//! Blocking client for the `TADN` protocol: one reused TCP connection,
//! buffered pipelined writes, and a local queue for the asynchronous
//! responses that arrive between barriers.
//!
//! The protocol is pipelined: ingest requests (`trip_start` / `segment` /
//! `trip_end`) are fire-and-forget writes, and the server pushes
//! [`Response::Score`] / [`Response::TripComplete`] frames back whenever
//! its shards score something (plus [`Response::PolicyNotice`] frames
//! when the engine's ingest sanitization policies touch one of this
//! connection's trips). Two barrier calls give the stream
//! structure: [`Client::flush`] (everything sent so far is scored and its
//! responses received) and [`Client::snapshot`] (a fleet image for remote
//! warm restart). While waiting for a barrier reply the client parks
//! every other response in an internal queue, which [`Client::try_recv`]
//! and [`Client::recv`] drain.
//!
//! Writes are buffered and only flushed when a reply is needed (or by
//! [`Client::flush_writes`]), so a producer streaming thousands of
//! segment frames pays one syscall per batch, not per event.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use tad_metrics::MetricsSnapshot;
use tad_serve::{FleetSnapshot, TripId};

use crate::frame::{ErrorCode, FrameError, Request, Response, DEFAULT_MAX_FRAME};
use crate::wire::{read_response, write_request, RecvError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a response frame; the
    /// connection is no longer usable.
    Frame(FrameError),
    /// The server closed the connection while a reply was pending.
    Disconnected,
    /// No bytes arrived within the configured read timeout
    /// ([`Client::with_read_timeout`]) — the defence against a dead or
    /// wedged server hanging the blocking reader forever. The read
    /// position within a frame is unknown after a timeout, so the
    /// connection must be treated as unusable: reconnect rather than
    /// retry on it.
    Timeout,
    /// The server answered a barrier request with an error frame.
    Server {
        /// What the server reported.
        code: ErrorCode,
        /// The trip the failure concerned, when there was one.
        trip: Option<TripId>,
        /// The server's pacing hint for [`ErrorCode::Throttled`] replies.
        /// With a [`RetryPolicy`] configured, [`Client`] honors it: the
        /// call sleeps at least this long (on the same connection) before
        /// retrying.
        retry_after: Option<Duration>,
        /// Human-readable context from the server.
        detail: String,
    },
    /// Every reconnect attempt the configured [`RetryPolicy`] allowed has
    /// been spent without restoring the connection.
    Retrying {
        /// Reconnect attempts consumed before giving up.
        attempts: u32,
        /// The last failure observed (the original error when no
        /// reconnect ever succeeded enough to retry the call).
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "wire protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Timeout => write!(f, "no response within the read timeout"),
            ClientError::Server { code, trip: Some(id), detail, .. } if !detail.is_empty() => {
                write!(f, "server error for trip {id}: {code} ({detail})")
            }
            ClientError::Server { code, trip: Some(id), .. } => {
                write!(f, "server error for trip {id}: {code}")
            }
            ClientError::Server { code, detail, .. } if !detail.is_empty() => {
                write!(f, "server error: {code} ({detail})")
            }
            ClientError::Server { code, .. } => write!(f, "server error: {code}"),
            ClientError::Retrying { attempts, last } => {
                write!(f, "gave up after {attempts} reconnect attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// Bounds on the client's automatic reconnect behaviour, enabled with
/// [`Client::with_retry`]. Between attempts the client sleeps an
/// exponentially growing delay (doubling from `base_delay`, capped at
/// `max_delay`) scaled by a random jitter factor in `[0.5, 1.0]` so a
/// fleet of producers bounced by the same outage does not reconnect in
/// lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total reconnect attempts one client call may spend before failing
    /// with [`ClientError::Retrying`].
    pub max_reconnects: u32,
    /// Sleep before the first reconnect attempt.
    pub base_delay: Duration,
    /// Cap on the exponentially growing sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_reconnects: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

/// A blocking `TADN` client over one reused TCP connection. See the
/// module docs for the pipelining model.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    queue: VecDeque<Response>,
    max_frame_len: usize,
    addrs: Vec<SocketAddr>,
    retry: Option<RetryPolicy>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    /// xorshift64 state for backoff jitter (no RNG dependency).
    jitter: u64,
}

impl Client {
    /// Connects to a [`crate::NetServer`] (enables `TCP_NODELAY`).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established (or
    /// the address resolves to nothing).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone()?);
        // Seed the jitter stream from per-process identity so concurrent
        // producers desynchronize; the constant keeps a zero pid seed
        // non-degenerate.
        let jitter = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(std::process::id());
        Ok(Client {
            reader: stream,
            writer,
            queue: VecDeque::new(),
            max_frame_len: DEFAULT_MAX_FRAME,
            addrs,
            retry: None,
            read_timeout: None,
            write_timeout: None,
            jitter,
        })
    }

    /// Enables bounded automatic reconnect: when a call fails on a
    /// transport error (I/O, disconnect, timeout, or undecodable bytes),
    /// the client re-dials the original address under `policy`'s backoff
    /// schedule and retries the call, failing with
    /// [`ClientError::Retrying`] only once the attempt budget is spent.
    ///
    /// Reconnection re-establishes the *transport*, not the stream state:
    /// responses that were in flight on the old connection are lost, and
    /// the server re-routes this client's live trips to the new
    /// connection lazily (on its next event per trip). Typed server
    /// replies ([`ClientError::Server`]) are never retried.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    /// Raises (or lowers) the cap on incoming frame payloads — raise it
    /// when snapshots of very large fleets exceed the 64 MiB default.
    pub fn with_max_frame_len(mut self, max: usize) -> Client {
        self.max_frame_len = max;
        self
    }

    /// Bounds how long a blocking read ([`Client::flush`],
    /// [`Client::snapshot`], [`Client::recv`]) waits for the server
    /// before failing with [`ClientError::Timeout`]. Without one — the
    /// default — a dead or wedged server hangs the reader forever.
    ///
    /// `None` restores unbounded blocking. After a timeout fires the
    /// connection is desynchronized (the read may have stopped mid-frame)
    /// and must be replaced, so pick a timeout comfortably above the
    /// slowest expected barrier, not a retry interval.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the socket refuses the option (a zero
    /// duration, or a closed socket).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Result<Client, ClientError> {
        self.reader.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(self)
    }

    /// Bounds every blocking socket *write*: when the server has paused
    /// reading this connection (slow-consumer throttling — see
    /// [`crate::NetConfig::write_highwater`]) and the kernel send buffer
    /// fills, a send surfaces as the typed [`ClientError::Timeout`]
    /// instead of blocking forever. `None` restores unbounded blocking.
    /// Like a read timeout, a fired write timeout leaves the stream
    /// position unknown: reconnect rather than retry on the connection.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the socket refuses the option (a zero
    /// duration, or a closed socket).
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Result<Client, ClientError> {
        self.reader.set_write_timeout(timeout)?;
        self.write_timeout = timeout;
        Ok(self)
    }

    /// Opens a scoring session for a trip (fire-and-forget; buffered).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn trip_start(
        &mut self,
        id: TripId,
        source: u32,
        dest: u32,
        time_slot: u8,
    ) -> Result<(), ClientError> {
        self.send(&Request::TripStart { id, source, dest, time_slot })
    }

    /// Streams one traversed road segment (fire-and-forget; buffered).
    /// The server will push a [`Response::Score`] back once scored.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn segment(&mut self, id: TripId, seg: u32) -> Result<(), ClientError> {
        self.send(&Request::Segment { id, seg })
    }

    /// Ends a trip (fire-and-forget; buffered). The server will push a
    /// [`Response::TripComplete`] back with the final score.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn trip_end(&mut self, id: TripId) -> Result<(), ClientError> {
        self.send(&Request::TripEnd { id })
    }

    /// Writes any request frame (fire-and-forget; buffered).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_request(&mut self.writer, req)?;
        Ok(())
    }

    /// Pushes buffered request frames to the socket without waiting for
    /// anything. Barrier calls do this implicitly.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the flush fails.
    pub fn flush_writes(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Quiesce barrier: sends [`Request::Flush`] and blocks until the
    /// server's [`Response::Stats`] reply. When this returns, every event
    /// accepted from this connection so far has been scored, and all its
    /// `Score` / `TripComplete` / backpressure responses are available
    /// through [`Client::try_recv`].
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the server reports the barrier failed
    /// (e.g. the engine shut down).
    pub fn flush(&mut self) -> Result<FleetSnapshot, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::Flush)?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Stats(stats) => return Ok(stats),
                    resp => c.queue_or_fail(resp)?,
                }
            }
        })
    }

    /// Remote warm-restart capture: sends [`Request::SnapshotRequest`] and
    /// blocks until the serialized [`tad_serve::FleetImage`] arrives.
    /// Decode with [`tad_serve::image_from_bytes`] and feed to
    /// [`crate::NetServerBuilder::resume`] (or
    /// [`tad_serve::FleetEngine::restore`]) elsewhere.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the capture failed server-side.
    pub fn snapshot(&mut self) -> Result<Bytes, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::SnapshotRequest)?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Snapshot { image } => return Ok(image),
                    resp => c.queue_or_fail(resp)?,
                }
            }
        })
    }

    /// Metrics barrier: sends [`Request::MetricsRequest`] and blocks until
    /// the server's [`Response::Metrics`] snapshot arrives. Against a
    /// single server this is the engine + net-layer registry; against a
    /// `tad-router` admin endpoint it is the fleet-wide merge of every
    /// live backend's snapshot plus the router's own `router.*` metrics.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up first, and
    /// [`ClientError::Server`] when the server reports a fatal error
    /// instead.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::MetricsRequest)?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Metrics(snapshot) => return Ok(snapshot),
                    resp => c.queue_or_fail(resp)?,
                }
            }
        })
    }

    /// Delta-snapshot barrier: sends [`Request::DeltaRequest`] and blocks
    /// until the serialized [`tad_serve::FleetDelta`] (`TADD` blob)
    /// arrives — the increment of the server's checkpoint chain since its
    /// previous capture. Decode with [`tad_serve::delta_from_bytes`] and
    /// apply through [`tad_serve::DeltaBase`].
    ///
    /// # Errors
    /// Transport failures as for [`Client::snapshot`];
    /// [`ClientError::Server`] when no checkpoint has armed delta
    /// tracking yet, or when sent to a router front (admin frames are
    /// refused there).
    pub fn delta(&mut self) -> Result<Bytes, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::DeltaRequest)?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Delta { delta } => return Ok(delta),
                    resp => c.queue_or_fail_admin(resp)?,
                }
            }
        })
    }

    /// Live-restore barrier: sends [`Request::Install`] with a serialized
    /// [`tad_serve::FleetImage`] and blocks until the server confirms the
    /// sessions were delivered into its **running** engine, returning how
    /// many arrived. The target half of a drain/handoff or a failover
    /// restore.
    ///
    /// # Errors
    /// Transport failures as for [`Client::snapshot`];
    /// [`ClientError::Server`] when the blob does not decode, the engine
    /// refuses it (shard queues closed), or a router front rejects the
    /// admin frame.
    pub fn install(&mut self, image: Bytes) -> Result<u64, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::Install { image: image.clone() })?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Installed { sessions } => return Ok(sessions),
                    resp => c.queue_or_fail_admin(resp)?,
                }
            }
        })
    }

    /// Drain barrier: sends [`Request::Drain`] and blocks until the
    /// server hands over every live session as a serialized
    /// [`tad_serve::FleetImage`], **removing** them from its engine
    /// without firing completions — the source half of a handoff. Feed
    /// the blob to [`Client::install`] on the destination.
    ///
    /// # Errors
    /// Transport failures as for [`Client::snapshot`];
    /// [`ClientError::Server`] when the capture failed server-side or a
    /// router front rejects the admin frame.
    pub fn drain(&mut self) -> Result<Bytes, ClientError> {
        self.retry_loop(|c| {
            c.send(&Request::Drain)?;
            c.flush_writes()?;
            loop {
                match c.read_one()? {
                    Response::Drained { image } => return Ok(image),
                    resp => c.queue_or_fail_admin(resp)?,
                }
            }
        })
    }

    /// Pops the next already-received response, if any (never touches the
    /// socket).
    pub fn try_recv(&mut self) -> Option<Response> {
        self.queue.pop_front()
    }

    /// Pops the next response, reading from the socket (after pushing any
    /// buffered writes) when the local queue is empty. Blocks until a
    /// response arrives.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport failures,
    /// [`ClientError::Disconnected`] when the server hangs up.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if let Some(resp) = self.queue.pop_front() {
            return Ok(resp);
        }
        self.flush_writes()?;
        self.read_one()
    }

    /// One blocking socket read. A timeout configured with
    /// [`Client::with_read_timeout`] surfaces as the typed
    /// [`ClientError::Timeout`] (the platform reports it as `WouldBlock`
    /// or `TimedOut` depending on the OS).
    fn read_one(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.reader, self.max_frame_len) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::Disconnected),
            Err(RecvError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(ClientError::Timeout)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Parks an out-of-band response while waiting for a barrier reply —
    /// except fatal connection-level error frames (no trip named, code
    /// beyond the pacing notices), which fail the barrier itself. Errors
    /// that *name a trip* concern that trip, not the barrier — e.g. a
    /// router reporting one backend's loss while the rest of the fleet
    /// still answers — so they stay in the stream for the application,
    /// like the backpressure, reject, and throttle pacing notices
    /// (`Throttled` without a trip is the rate limiter asking the
    /// producer to slow down, not a barrier failure).
    fn queue_or_fail(&mut self, resp: Response) -> Result<(), ClientError> {
        match resp {
            Response::Error { code, trip: None, retry_after_ms, detail }
                if !matches!(
                    code,
                    ErrorCode::Backpressure | ErrorCode::Rejected | ErrorCode::Throttled
                ) =>
            {
                Err(ClientError::Server {
                    code,
                    trip: None,
                    retry_after: retry_after_ms.map(Duration::from_millis),
                    detail,
                })
            }
            other => {
                self.queue.push_back(other);
                Ok(())
            }
        }
    }

    /// Stricter parker for the admin barriers (`delta` / `install` /
    /// `drain`): *any* error frame not naming a trip fails the call —
    /// including `Rejected`, which is how a router front refuses admin
    /// frames outright, and `Throttled`, which [`Client::retry_loop`]
    /// turns into a paced same-connection retry under the configured
    /// [`RetryPolicy`]. Trip-scoped errors and backpressure stay in the
    /// stream as usual.
    fn queue_or_fail_admin(&mut self, resp: Response) -> Result<(), ClientError> {
        match resp {
            Response::Error { code, trip: None, retry_after_ms, detail }
                if !matches!(code, ErrorCode::Backpressure) =>
            {
                Err(ClientError::Server {
                    code,
                    trip: None,
                    retry_after: retry_after_ms.map(Duration::from_millis),
                    detail,
                })
            }
            other => {
                self.queue.push_back(other);
                Ok(())
            }
        }
    }

    /// Runs `op`, and on a transport failure dials a fresh connection
    /// under the retry policy (when one is configured) and runs `op`
    /// again — one attempt budget across the whole call, however the
    /// failures interleave. Typed [`ClientError::Server`] replies are
    /// never retried, with one exception: a `Throttled` reply is the
    /// server pacing this sender, so the call sleeps the larger of the
    /// backoff step and the server's `retry_after` hint and retries on
    /// the **same** connection (the transport is healthy — reconnecting
    /// would only evade the admission controller).
    fn retry_loop<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempts: u32 = 0;
        loop {
            let mut last = match op(self) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if let ClientError::Server { code: ErrorCode::Throttled, retry_after, .. } = &last {
                let hint = *retry_after;
                let policy = match self.retry {
                    Some(policy) => policy,
                    None => return Err(last),
                };
                if attempts >= policy.max_reconnects {
                    return Err(ClientError::Retrying { attempts, last: Box::new(last) });
                }
                attempts += 1;
                let backoff = self.backoff_delay(&policy, attempts);
                std::thread::sleep(hint.map_or(backoff, |h| backoff.max(h)));
                continue;
            }
            let policy = match self.retry {
                Some(policy) if retryable(&last) => policy,
                _ => return Err(last),
            };
            loop {
                if attempts >= policy.max_reconnects {
                    return Err(ClientError::Retrying { attempts, last: Box::new(last) });
                }
                attempts += 1;
                std::thread::sleep(self.backoff_delay(&policy, attempts));
                match self.reconnect() {
                    Ok(()) => break,
                    Err(e) => last = e,
                }
            }
        }
    }

    /// Replaces the socket pair with a fresh connection to the original
    /// address (same `TCP_NODELAY` and read-timeout settings). Responses
    /// already parked in the local queue survive; anything in flight on
    /// the old connection is gone.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(&self.addrs[..])?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        self.reader = stream;
        self.writer = writer;
        Ok(())
    }

    /// Exponential backoff with multiplicative jitter in `[0.5, 1.0]`.
    fn backoff_delay(&mut self, policy: &RetryPolicy, attempt: u32) -> Duration {
        let mut delay = policy.base_delay.min(policy.max_delay);
        for _ in 1..attempt {
            delay = delay.saturating_mul(2).min(policy.max_delay);
        }
        // xorshift64 — deterministic per client, decorrelated across
        // processes; no RNG crate needed for a jitter factor.
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        delay.mul_f64(0.5 + 0.5 * unit)
    }
}

/// Whether an error is a transport failure a reconnect can cure.
fn retryable(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_)
            | ClientError::Disconnected
            | ClientError::Timeout
            | ClientError::Frame(_)
    )
}
