//! Session-persistence micro-benches: the fleet snapshot codec, the
//! engine's live snapshot/restore round-trip, and the O(1) LRU session
//! store.
//!
//! Three views:
//!
//! * `snapshot_codec`: encode/decode throughput of [`tad_serve::FleetImage`]
//!   blobs over synthetic serving-realistic sessions (hidden width 256,
//!   ~24-segment traces) at 64 / 512 / 4096 sessions.
//! * `engine_snapshot`: wall-clock of [`FleetEngine::snapshot`] against a
//!   live engine holding N in-flight trips, and of building a restored
//!   engine from the image — the warm-restart costs an operator budgets
//!   for.
//! * `lru`: per-op cost of the session store's `insert`-at-cap (evicting)
//!   and `touch` across store sizes 1k / 8k / 64k — flat per-op times are
//!   the point; the pre-PR2 eviction scan was O(sessions).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use causaltad::{CausalTad, CausalTadConfig, ScorerState, SegmentTrace};
use tad_bench::fleet_walks;
use tad_eval::cities::{xian_s, Scale};
use tad_serve::session::{Session, SessionStore};
use tad_serve::{
    image_from_bytes, image_to_bytes, Event, FleetConfig, FleetEngine, FleetImage, SessionRecord,
};

const SESSION_COUNTS: [usize; 3] = [64, 512, 4096];
const STORE_SIZES: [usize; 3] = [1_024, 8_192, 65_536];

/// A serving-realistic synthetic state: 256 hidden floats, a ~24-segment
/// trace. No model is needed — the codec only sees the data.
fn synthetic_state(i: u64) -> ScorerState {
    let hidden: Vec<f32> = (0..256).map(|j| ((i as f32) * 0.01 + j as f32).sin()).collect();
    let trace: Vec<SegmentTrace> = (0..24)
        .map(|j| SegmentTrace {
            segment: (i as u32).wrapping_add(j) % 10_000,
            nll: 0.25 * j as f64,
            log_scale: 0.125,
        })
        .collect();
    ScorerState::from_parts(hidden, 1.5, 12.0, 3.0, Some(i as u32 % 10_000), 3, trace)
}

fn synthetic_image(sessions: usize) -> FleetImage {
    FleetImage {
        num_shards: 4,
        sessions: (0..sessions as u64)
            .map(|id| SessionRecord {
                id,
                state: synthetic_state(id),
                pending: Vec::new(),
                ending: false,
                idle_micros: id * 100,
            })
            .collect(),
    }
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_codec");
    group.sample_size(20);
    for &n in &SESSION_COUNTS {
        let image = synthetic_image(n);
        let blob = image_to_bytes(&image);
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| image_to_bytes(&image));
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, _| {
            b.iter(|| image_from_bytes(blob.clone()).expect("valid blob"));
        });
    }
    group.finish();
}

fn trained_model() -> Arc<CausalTad> {
    let city = tad_trajsim::generate_city(&xian_s(Scale::Quick));
    let cfg = CausalTadConfig {
        embed_dim: 64,
        hidden_dim: 256,
        latent_dim: 32,
        epochs: 1,
        ..CausalTadConfig::test_scale()
    };
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    Arc::new(model)
}

/// An engine holding `n` mid-flight trips (started and half-walked).
fn live_engine(model: &Arc<CausalTad>, walks: &[Vec<u32>]) -> FleetEngine {
    let engine = FleetEngine::builder(Arc::clone(model))
        .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
        .build()
        .expect("trained model");
    let mut events = Vec::new();
    for (id, walk) in walks.iter().enumerate() {
        events.push(Event::TripStart {
            id: id as u64,
            source: walk[0],
            dest: *walk.last().expect("non-empty"),
            time_slot: 0,
        });
    }
    for step in 0..walks[0].len() / 2 {
        for (id, walk) in walks.iter().enumerate() {
            if let Some(&seg) = walk.get(step) {
                events.push(Event::Segment { id: id as u64, seg });
            }
        }
    }
    engine.submit_all(events).expect("engine is live");
    engine
}

fn bench_engine_snapshot(c: &mut Criterion) {
    let model = trained_model();
    let mut group = c.benchmark_group("engine_snapshot");
    group.sample_size(10);
    for &n in &SESSION_COUNTS {
        let walks = fleet_walks(&model, n, 8, 23);
        let engine = live_engine(&model, &walks);
        let image = engine.snapshot().expect("all shards live");
        assert_eq!(image.sessions.len(), n);
        group.bench_with_input(BenchmarkId::new("capture", n), &n, |b, _| {
            b.iter(|| engine.snapshot().expect("all shards live"));
        });
        group.bench_with_input(BenchmarkId::new("restore_build", n), &n, |b, _| {
            b.iter_batched(
                || image.clone(),
                |image| {
                    FleetEngine::restore(Arc::clone(&model), image)
                        .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
                        .build()
                        .expect("snapshot fits")
                        .shutdown()
                },
                BatchSize::SmallInput,
            );
        });
        engine.shutdown();
    }
    group.finish();
}

fn full_store(n: usize, now: Instant) -> SessionStore {
    let mut store = SessionStore::new(n);
    for id in 0..n as u64 {
        store.insert(id, Session::new(ScorerState::default(), now));
    }
    store
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    group.sample_size(20);
    for &n in &STORE_SIZES {
        let now = Instant::now();
        // Churn: every insert at cap evicts the true oldest. O(1) per op —
        // per-op time must stay flat as the store grows.
        group.bench_with_input(BenchmarkId::new("insert_evict", n), &n, |b, _| {
            let mut store = full_store(n, now);
            let mut next_id = n as u64;
            b.iter(|| {
                let evicted = store.insert(next_id, Session::new(ScorerState::default(), now));
                next_id += 1;
                evicted.expect("store is at cap").0
            });
        });
        group.bench_with_input(BenchmarkId::new("touch", n), &n, |b, _| {
            let mut store = full_store(n, now);
            let mut cursor: u64 = 0;
            b.iter(|| {
                // Stride through the id space pseudo-randomly.
                cursor = cursor.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let id = cursor % n as u64;
                store.touch(id, now).expect("id in range");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot_codec, bench_engine_snapshot, bench_lru);
criterion_main!(benches);
