//! Verifies the paper's O(1) online-update claim: the cost of
//! `OnlineScorer::push` must not grow with how many segments have already
//! been consumed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use causaltad::{CausalTad, CausalTadConfig};
use tad_trajsim::{generate_city, City, CityConfig};

fn trained_model() -> (City, CausalTad) {
    let city = generate_city(&CityConfig::test_scale(900));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 1;
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    (city, model)
}

/// Builds a long valid walk by following successors.
fn long_walk(model: &CausalTad, start: u32, len: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut walk = vec![start];
    while walk.len() < len {
        let succ = model.successors_of(*walk.last().unwrap());
        if succ.is_empty() {
            break;
        }
        walk.push(succ[rng.gen_range(0..succ.len())]);
    }
    walk
}

fn bench_online_update(c: &mut Criterion) {
    let (_city, model) = trained_model();
    let mut rng = StdRng::seed_from_u64(1);
    let walk = long_walk(&model, 0, 512, &mut rng);

    let mut group = c.benchmark_group("online_push");
    group.sample_size(30);
    // Cost of push() after different prefix depths: flat = O(1).
    for &depth in &[8usize, 64, 256] {
        if walk.len() <= depth {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    let mut scorer = model.online(walk[0], *walk.last().unwrap(), 0);
                    for &seg in &walk[..depth] {
                        scorer.push(seg);
                    }
                    scorer
                },
                |mut scorer| scorer.push(walk[depth]),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_scaling_lookup(c: &mut Criterion) {
    let (_city, model) = trained_model();
    let table = model.scaling().expect("fitted");
    c.bench_function("scaling_table_lookup", |b| {
        b.iter(|| std::hint::black_box(table.log_scale(std::hint::black_box(5), 0)))
    });
}

criterion_group!(benches, bench_online_update, bench_scaling_lookup);
criterion_main!(benches);
