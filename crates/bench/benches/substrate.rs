//! Micro-benchmarks of the substrates: tensor kernels, GRU steps,
//! shortest paths, map matching, and the scaling-table precompute.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use causaltad::{CausalTad, CausalTadConfig};
use tad_autodiff::nn::GruCell;
use tad_autodiff::{ParamStore, Tensor};
use tad_roadnet::dijkstra::{length_cost, node_shortest_path, segment_shortest_path};
use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
use tad_roadnet::index::SegmentIndex;
use tad_roadnet::matching::{match_trajectory, synthesize_gps, MatchConfig};
use tad_roadnet::NodeId;
use tad_trajsim::{generate_city, CityConfig};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::rand_uniform(64, 64, -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(64, 64, -1.0, 1.0, &mut rng);
    let mut out = Tensor::zeros(64, 64);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| a.matmul_into(std::hint::black_box(&b), &mut out))
    });
    // The projection shape that dominates baseline decoding.
    let h = Tensor::rand_uniform(1, 48, -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(700, 48, -1.0, 1.0, &mut rng);
    let mut logits = Tensor::zeros(1, 700);
    c.bench_function("vocab_projection_700x48", |bch| {
        bch.iter(|| h.matmul_t_into(std::hint::black_box(&w), &mut logits))
    });
}

fn bench_gru_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 24, 48, &mut rng);
    let x = Tensor::rand_uniform(1, 24, -1.0, 1.0, &mut rng);
    let h = Tensor::rand_uniform(1, 48, -1.0, 1.0, &mut rng);
    c.bench_function("gru_infer_step_24_48", |bch| {
        bch.iter(|| gru.infer_step(&store, std::hint::black_box(&x), &h))
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let net = generate_grid_city(
        &GridCityConfig { width: 16, height: 16, ..GridCityConfig::default() },
        &mut rng,
    );
    let from = NodeId(0);
    let to = NodeId((net.num_nodes() - 1) as u32);
    c.bench_function("dijkstra_node_16x16", |bch| {
        bch.iter(|| node_shortest_path(&net, from, to, length_cost(&net)))
    });
    let s = net.out_segments(from)[0];
    let d = net.in_segments(to)[0];
    c.bench_function("dijkstra_segment_16x16", |bch| {
        bch.iter(|| segment_shortest_path(&net, s, d, length_cost(&net)))
    });
}

fn bench_map_matching(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = generate_grid_city(
        &GridCityConfig { missing_edge_prob: 0.0, jitter: 0.0, ..GridCityConfig::tiny() },
        &mut rng,
    );
    let index = SegmentIndex::build(&net, 200.0);
    let route =
        node_shortest_path(&net, NodeId(0), NodeId(35), length_cost(&net)).unwrap().segments;
    let gps = synthesize_gps(&net, &route, 40.0, 8.0, &mut rng);
    let cfg = MatchConfig::default();
    let mut group = c.benchmark_group("map_matching");
    group.sample_size(20);
    group.bench_function("hmm_viterbi", |bch| {
        bch.iter(|| match_trajectory(&net, &index, std::hint::black_box(&gps), &cfg).unwrap())
    });
    group.finish();
}

fn bench_scaling_precompute(c: &mut Criterion) {
    let city = generate_city(&CityConfig::test_scale(901));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 1;
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let mut group = c.benchmark_group("scaling_table");
    group.sample_size(10);
    group.bench_function("precompute_all_segments", |bch| bch.iter(|| model.precompute_scaling()));
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gru_step,
    bench_dijkstra,
    bench_map_matching,
    bench_scaling_precompute
);
criterion_main!(benches);
