//! Network front-end benchmarks: frame-codec throughput (frames/s for the
//! hot frame types) and end-to-end loopback scoring throughput
//! (scored segments/s through `NetServer` + `Client` over 127.0.0.1) —
//! a connection-count sweep (1 to 256 concurrent producers against the
//! readiness event loop), and routed through a `tad-router` tier over two
//! backend servers.
//!
//! Besides the Criterion report, the run writes machine-readable
//! `BENCH_net.json` (override the path with `BENCH_NET_OUT`) so the wire
//! path's perf trajectory is tracked PR-over-PR, and **asserts** that
//! every streamed segment came back scored — a routing or backpressure
//! regression fails the bench run, not just the numbers.
//!
//! `CRITERION_QUICK=1` shrinks the workload for CI smoke runs.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use causaltad::{CausalTad, CausalTadConfig, SegmentTrace};
use tad_bench::fleet_walks;
use tad_eval::cities::{xian_s, Scale};
use tad_net::{
    request_from_bytes, request_to_bytes, response_from_bytes, response_to_bytes, Client,
    NetServer, Request, Response, TripComplete,
};
use tad_router::RouterServer;
use tad_serve::{Completion, FleetConfig, ScoreUpdate};

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The hot request on the wire: one segment event.
fn segment_request() -> Request {
    Request::Segment { id: 0x1234_5678, seg: 4242 }
}

/// The hot response on the wire: one per-segment score.
fn score_response() -> Response {
    Response::Score(ScoreUpdate {
        id: 0x1234_5678,
        seq: 17,
        segment: 4242,
        score: 3.25,
        nll: 1.5,
        log_scale: 0.125,
    })
}

/// The big response: a finished trip with a serving-realistic 24-segment
/// trace.
fn trip_complete_response() -> Response {
    Response::TripComplete(TripComplete {
        id: 0x1234_5678,
        completion: Completion::Ended,
        score: 12.5,
        likelihood_nll: 14.0,
        scale_log_sum: 1.5,
        trace: (0..24)
            .map(|i| SegmentTrace { segment: i, nll: 0.25 * i as f64, log_scale: 0.125 })
            .collect(),
    })
}

/// Median-of-reps frames/s for one closure.
fn frames_per_s(mut f: impl FnMut()) -> f64 {
    let per_rep = if quick_mode() { 2_000 } else { 50_000 };
    let reps = 5;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..per_rep {
            f();
        }
        samples.push(per_rep as f64 / t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[reps / 2]
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    let cases: Vec<(&str, Request)> = vec![("segment_request", segment_request())];
    for (name, req) in &cases {
        let blob = request_to_bytes(req);
        group.bench_function(format!("encode/{name}"), |b| b.iter(|| request_to_bytes(req)));
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| request_from_bytes(blob.clone()).expect("valid frame"))
        });
    }
    let responses: Vec<(&str, Response)> = vec![
        ("score_response", score_response()),
        ("trip_complete_24seg", trip_complete_response()),
    ];
    for (name, resp) in &responses {
        let blob = response_to_bytes(resp);
        group.bench_function(format!("encode/{name}"), |b| b.iter(|| response_to_bytes(resp)));
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| response_from_bytes(blob.clone()).expect("valid frame"))
        });
    }
    group.finish();
}

fn trained_model() -> Arc<CausalTad> {
    let city = tad_trajsim::generate_city(&xian_s(Scale::Quick));
    let cfg = CausalTadConfig {
        embed_dim: 64,
        hidden_dim: 256,
        latent_dim: 32,
        epochs: 1,
        ..CausalTadConfig::test_scale()
    };
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    Arc::new(model)
}

/// One full loopback pass: stream every walk through a TCP client, flush,
/// drain, and assert every segment came back scored. Returns
/// (elapsed seconds, events sent, segments scored).
fn loopback_pass(model: &Arc<CausalTad>, walks: &[Vec<u32>]) -> (f64, u64, u64) {
    let server = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig {
            num_shards: 2,
            queue_capacity: 65_536,
            ..FleetConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let total_segments: usize = walks.iter().map(|w| w.len()).sum();
    let start = Instant::now();
    for (id, walk) in walks.iter().enumerate() {
        client.trip_start(id as u64, walk[0], *walk.last().expect("non-empty"), 0).expect("write");
    }
    let longest = walks.iter().map(|w| w.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, walk) in walks.iter().enumerate() {
            if let Some(&seg) = walk.get(step) {
                client.segment(id as u64, seg).expect("write");
            }
            if step + 1 == walk.len() {
                client.trip_end(id as u64).expect("write");
            }
        }
    }
    let stats = client.flush().expect("barrier");
    let mut scores = 0u64;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(_) => scores += 1,
            Response::TripComplete(_) => {}
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        scores as usize, total_segments,
        "every streamed segment must come back scored (no drops, no backpressure losses)"
    );
    assert_eq!(stats.trips_completed, walks.len() as u64);
    server.shutdown();
    (elapsed, (walks.len() * 2 + total_segments) as u64, scores)
}

/// Streams every walk to `addr` across `conns` concurrent client
/// connections (walk `i` belongs to connection `i % conns`), flushes each,
/// and counts the scores received. Returns (elapsed seconds, total scores).
fn stream_walks(addr: std::net::SocketAddr, walks: &[Vec<u32>], conns: usize) -> (f64, u64) {
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|conn| {
            let slice: Vec<(u64, Vec<u32>)> = walks
                .iter()
                .enumerate()
                .filter(|(i, _)| i % conns == conn)
                .map(|(i, w)| (i as u64, w.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (id, walk) in &slice {
                    client
                        .trip_start(*id, walk[0], *walk.last().expect("non-empty"), 0)
                        .expect("write");
                }
                let longest = slice.iter().map(|(_, w)| w.len()).max().unwrap_or(0);
                for step in 0..longest {
                    for (id, walk) in &slice {
                        if let Some(&seg) = walk.get(step) {
                            client.segment(*id, seg).expect("write");
                        }
                        if step + 1 == walk.len() {
                            client.trip_end(*id).expect("write");
                        }
                    }
                }
                client.flush().expect("barrier");
                let mut scores = 0u64;
                while let Some(resp) = client.try_recv() {
                    match resp {
                        Response::Score(_) => scores += 1,
                        Response::TripComplete(_) => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                scores
            })
        })
        .collect();
    let scored: u64 = handles.into_iter().map(|h| h.join().expect("producer")).sum();
    (start.elapsed().as_secs_f64(), scored)
}

/// Multi-connection variant of [`loopback_pass`]: the same fleet split
/// across `conns` concurrent producers (PR 4's number was
/// single-connection — this measures the per-connection thread path and
/// response routing under contention).
fn multi_conn_pass(model: &Arc<CausalTad>, walks: &[Vec<u32>], conns: usize) -> (f64, u64, u64) {
    let server = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig {
            num_shards: 2,
            queue_capacity: 65_536,
            ..FleetConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let total_segments: usize = walks.iter().map(|w| w.len()).sum();
    let (elapsed, scored) = stream_walks(server.local_addr(), walks, conns);
    assert_eq!(
        scored as usize, total_segments,
        "every streamed segment must come back scored across all connections"
    );
    let stats = server.shutdown();
    assert_eq!(stats.trips_completed, walks.len() as u64);
    (elapsed, (walks.len() * 2 + total_segments) as u64, scored)
}

/// Routed variant: the same fleet through a `tad-router` tier over
/// `backends` independent `tad-net` servers, `conns` producers on the
/// front door — the cross-process sharding data path end to end.
fn routed_pass(
    model: &Arc<CausalTad>,
    walks: &[Vec<u32>],
    backends: usize,
    conns: usize,
) -> (f64, u64, u64) {
    let servers: Vec<NetServer> = (0..backends)
        .map(|_| {
            NetServer::builder(Arc::clone(model))
                .fleet_config(FleetConfig {
                    num_shards: 2,
                    queue_capacity: 65_536,
                    ..FleetConfig::default()
                })
                .bind("127.0.0.1:0")
                .expect("bind backend")
        })
        .collect();
    let router = RouterServer::builder()
        .backends(servers.iter().map(|s| s.local_addr()))
        .bind("127.0.0.1:0")
        .expect("bind router");
    let total_segments: usize = walks.iter().map(|w| w.len()).sum();
    let (elapsed, scored) = stream_walks(router.local_addr(), walks, conns);
    assert_eq!(
        scored as usize, total_segments,
        "every routed segment must come back scored (no drops across the tier)"
    );
    assert_eq!(router.stats().responses_dropped, 0);
    router.shutdown();
    let completed: u64 = servers.into_iter().map(|s| s.shutdown().trips_completed).sum();
    assert_eq!(completed, walks.len() as u64);
    (elapsed, (walks.len() * 2 + total_segments) as u64, scored)
}

/// Median full pass of one workload closure.
fn median_pass(reps: usize, mut pass: impl FnMut() -> (f64, u64, u64)) -> (f64, u64, u64) {
    let mut passes = Vec::with_capacity(reps);
    for _ in 0..reps {
        passes.push(pass());
    }
    passes.sort_by(|a, b| a.0.total_cmp(&b.0));
    passes[passes.len() / 2]
}

fn bench_loopback(c: &mut Criterion) {
    let model = trained_model();
    let (sessions, len) = if quick_mode() { (64, 8) } else { (512, 24) };
    const CONNS: usize = 4;
    const BACKENDS: usize = 2;
    /// The readiness-loop scaling sweep: from one connection to far past
    /// the worker count, proving cross-connection micro-batching holds
    /// throughput as the fleet fans out.
    const SWEEP: [usize; 4] = [1, 4, 64, 256];
    let walks = fleet_walks(&model, sessions, len, 97);

    let mut group = c.benchmark_group("loopback");
    group.sample_size(10);
    group.bench_function(format!("stream_{sessions}x{len}"), |b| {
        b.iter(|| loopback_pass(&model, &walks))
    });
    group.bench_function(format!("stream_{sessions}x{len}_conns{CONNS}"), |b| {
        b.iter(|| multi_conn_pass(&model, &walks, CONNS))
    });
    group.bench_function(format!("routed_{sessions}x{len}_backends{BACKENDS}"), |b| {
        b.iter(|| routed_pass(&model, &walks, BACKENDS, CONNS))
    });
    group.finish();

    // Machine-readable artefact: median of a few full passes per path,
    // with the full connection sweep.
    let reps = if quick_mode() { 2 } else { 5 };
    let (elapsed, events, scored) = median_pass(reps, || loopback_pass(&model, &walks));
    let sweep: Vec<(String, (f64, u64, u64))> = SWEEP
        .iter()
        .map(|&conns| {
            let pass = median_pass(reps, || multi_conn_pass(&model, &walks, conns));
            (format!("loopback_conns{conns}"), pass)
        })
        .collect();
    let multi = sweep[1].1;
    let routed = median_pass(reps, || routed_pass(&model, &walks, BACKENDS, CONNS));

    let codec = [
        (
            "segment_request_encode",
            frames_per_s(|| {
                std::hint::black_box(request_to_bytes(&segment_request()));
            }),
        ),
        ("segment_request_decode", {
            let blob = request_to_bytes(&segment_request());
            frames_per_s(move || {
                std::hint::black_box(request_from_bytes(blob.clone()).expect("valid"));
            })
        }),
        (
            "score_response_encode",
            frames_per_s(|| {
                std::hint::black_box(response_to_bytes(&score_response()));
            }),
        ),
        ("score_response_decode", {
            let blob = response_to_bytes(&score_response());
            frames_per_s(move || {
                std::hint::black_box(response_from_bytes(blob.clone()).expect("valid"));
            })
        }),
        (
            "trip_complete_24seg_encode",
            frames_per_s(|| {
                std::hint::black_box(response_to_bytes(&trip_complete_response()));
            }),
        ),
        ("trip_complete_24seg_decode", {
            let blob = response_to_bytes(&trip_complete_response());
            frames_per_s(move || {
                std::hint::black_box(response_from_bytes(blob.clone()).expect("valid"));
            })
        }),
    ];
    let mut passes: Vec<(String, (f64, u64, u64))> =
        vec![("loopback".to_string(), (elapsed, events, scored))];
    passes.extend(sweep);
    // Continuity keys for the PR-over-PR trajectory.
    passes.push(("loopback_multi4".to_string(), multi));
    passes.push(("routed_2backends".to_string(), routed));
    write_json(sessions, len, events, &passes, &codec);
}

fn write_json(
    sessions: usize,
    len: usize,
    events: u64,
    passes: &[(String, (f64, u64, u64))],
    codec: &[(&str, f64)],
) {
    // `cargo bench` runs with the package directory as cwd; default to the
    // workspace root so the artefact lands next to README.md.
    let path = std::env::var("BENCH_NET_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json").to_string()
    });
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"sessions\": {sessions}, \"walk_len\": {len}, \"events\": {events}, \"quick_mode\": {}}},\n",
        quick_mode()
    ));
    for (name, (elapsed, events, scored)) in passes {
        out.push_str(&format!(
            "  \"{name}\": {{\"elapsed_s\": {elapsed:.6}, \"scored_segments\": {scored}, \"scored_segments_per_s\": {:.1}, \"events_per_s\": {:.1}}},\n",
            *scored as f64 / elapsed,
            *events as f64 / elapsed,
        ));
    }
    out.push_str("  \"frame_codec_frames_per_s\": {\n");
    for (i, (name, fps)) in codec.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {fps:.0}{}\n",
            if i + 1 < codec.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

criterion_group!(benches, bench_frame_codec, bench_loopback);
criterion_main!(benches);
