//! Training-path benchmarks: epoch wall-clock, tokens/s and GMAC/s for
//! forward+backward on the fig7 workload, plus kernel-level GMAC/s for the
//! three matmul layouts at training shapes.
//!
//! Three trainers run the same data with identical rng streams:
//!
//! * `reference_scalar` — the pre-vectorisation path: one trajectory per
//!   tape, unfused GRU steps, per-transition CE nodes
//!   (`CausalTad::trajectory_loss_reference`).
//! * `microbatch_1` — the fused sequential path (one trajectory per tape,
//!   fused GRU op, pooled tape memory).
//! * `microbatch_8` — the production path: 8 trajectories row-stacked per
//!   tape pass.
//!
//! Besides the Criterion report, the run writes machine-readable
//! `BENCH_train.json` (override the path with `BENCH_TRAIN_OUT`) so the
//! perf trajectory is tracked PR-over-PR, and **asserts** that the
//! micro-batched epoch losses track the scalar reference — a kernel
//! regression fails the bench run, not just the numbers.
//!
//! `CRITERION_QUICK=1` shrinks the workload for CI smoke runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use causaltad::{CausalTad, CausalTadConfig};
use tad_autodiff::optim::Adam;
use tad_autodiff::{Tape, Tensor};
use tad_eval::cities::{xian_s, Scale};
use tad_trajsim::{generate_city, Trajectory};

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The true pre-vectorisation epoch time on this workload, measured at the
/// seed of this PR (commit b660a21: unblocked scalar kernels,
/// allocation-per-node tape, per-trajectory training). `reference_scalar`
/// below reconstructs that *formulation* but runs on the post-PR substrate
/// (tiled kernels, pooled tape), so it is faster than the real pre-PR path
/// — compare against this constant for the honest PR-over-PR trajectory.
const PRE_PR_SECONDS_PER_EPOCH: f64 = 0.567;

/// The fig7 workload: the xian-s quick-scale city (600 training
/// trajectories at full size; CI smoke uses a 100-trajectory slice).
fn workload() -> (tad_trajsim::City, usize, usize) {
    let city = generate_city(&xian_s(Scale::Quick));
    let take = if quick_mode() { 100.min(city.data.train.len()) } else { city.data.train.len() };
    let epochs = if quick_mode() { 2 } else { 4 };
    (city, take, epochs)
}

fn config() -> CausalTadConfig {
    CausalTadConfig::default()
}

/// One optimiser epoch of the pre-vectorisation scalar path, mirroring the
/// `Trainer` loop structure (same shuffle stream, same 1/batch scaling).
fn epoch_reference(
    model: &mut CausalTad,
    train: &[Trajectory],
    order: &mut [usize],
    tape: &mut Tape,
    adam: &mut Adam,
    rng: &mut StdRng,
) -> f64 {
    let cfg = model.config().clone();
    order.shuffle(rng);
    let mut epoch_loss = 0.0f64;
    let mut counted = 0usize;
    for batch in order.chunks(cfg.batch_size) {
        let scale = 1.0 / batch.len() as f32;
        for &idx in batch {
            let t = &train[idx];
            if t.len() < 2 {
                continue;
            }
            let segments: Vec<u32> = t.segments.iter().map(|s| s.0).collect();
            tape.reset();
            let loss = model.trajectory_loss_reference(tape, &segments, t.time_slot, rng);
            epoch_loss += tape.value(loss).get(0, 0) as f64;
            counted += 1;
            let scaled = tape.scale(loss, scale);
            tape.backward(scaled, model.store_mut());
        }
        if cfg.grad_clip > 0.0 {
            model.store_mut().clip_grad_norm(cfg.grad_clip);
        }
        adam.step(model.store_mut());
    }
    epoch_loss / counted.max(1) as f64
}

/// One optimiser epoch of the micro-batched path (same loop skeleton).
fn epoch_microbatch(
    model: &mut CausalTad,
    train: &[Trajectory],
    order: &mut [usize],
    tape: &mut Tape,
    adam: &mut Adam,
    rng: &mut StdRng,
    micro_batch: usize,
) -> f64 {
    let cfg = model.config().clone();
    order.shuffle(rng);
    let mut epoch_loss = 0.0f64;
    let mut counted = 0usize;
    for batch in order.chunks(cfg.batch_size) {
        let scale = 1.0 / batch.len() as f32;
        let eligible: Vec<&Trajectory> =
            batch.iter().map(|&idx| &train[idx]).filter(|t| t.len() >= 2).collect();
        for chunk in eligible.chunks(micro_batch) {
            tape.reset();
            let loss = model.trajectory_loss_batch(tape, chunk, rng);
            epoch_loss += tape.value(loss).get(0, 0) as f64;
            counted += chunk.len();
            let scaled = tape.scale(loss, scale);
            tape.backward(scaled, model.store_mut());
        }
        if cfg.grad_clip > 0.0 {
            model.store_mut().clip_grad_norm(cfg.grad_clip);
        }
        adam.step(model.store_mut());
    }
    epoch_loss / counted.max(1) as f64
}

/// Analytic MAC count of forward+backward for one epoch. Backward of a
/// `m·k·n` matmul costs two products of the same volume (`dA`, `dB`), so
/// each forward MAC is counted three times. Elementwise work is excluded —
/// this is the conventional "useful GEMM work" normalisation.
fn epoch_macs(model: &CausalTad, train: &[Trajectory]) -> f64 {
    let cfg = model.config();
    let (de, dh, dl, rp_dl) = (cfg.embed_dim, cfg.hidden_dim, cfg.latent_dim, cfg.rp_latent_dim);
    let vocab = model.vocab();
    let mut fwd = 0.0f64;
    for t in train {
        if t.len() < 2 {
            continue;
        }
        // TG-VAE fixed cost: encoder, Gaussian head, SD decoder (two
        // full-vocab heads), decoder init.
        fwd += (2 * de * dh + dh * 2 * dl + dl * dh + 2 * dh * vocab + dl * dh) as f64;
        for w in t.segments.windows(2) {
            // GRU step + road-constrained head.
            let cands = model.successors_of(w[0].0).len();
            fwd += (de * 3 * dh + dh * 3 * dh + dh * cands) as f64;
        }
        // RP-VAE per token: encoder, head, decoder hidden, full-vocab head.
        fwd += (t.len() * (de * dh + dh * 2 * rp_dl + rp_dl * dh + dh * vocab)) as f64;
    }
    3.0 * fwd
}

struct TrainRun {
    label: &'static str,
    seconds_per_epoch: f64,
    tokens_per_s: f64,
    gmacs: f64,
    epoch_losses: Vec<f64>,
}

fn run_trainer(
    label: &'static str,
    city: &tad_trajsim::City,
    take: usize,
    epochs: usize,
    micro_batch: Option<usize>,
) -> TrainRun {
    let train = &city.data.train[..take];
    let cfg = config();
    let mut model = CausalTad::new(&city.net, cfg.clone());
    let mut adam = Adam::new(model.store(), cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut tape = Tape::new();
    let tokens: usize = train.iter().map(|t| t.len()).sum();
    let macs = epoch_macs(&model, train);
    let mut epoch_losses = Vec::with_capacity(epochs);
    let started = Instant::now();
    for _ in 0..epochs {
        let mean = match micro_batch {
            None => epoch_reference(&mut model, train, &mut order, &mut tape, &mut adam, &mut rng),
            Some(mb) => {
                epoch_microbatch(&mut model, train, &mut order, &mut tape, &mut adam, &mut rng, mb)
            }
        };
        epoch_losses.push(mean);
    }
    let secs = started.elapsed().as_secs_f64() / epochs as f64;
    TrainRun {
        label,
        seconds_per_epoch: secs,
        tokens_per_s: tokens as f64 / secs,
        gmacs: macs / secs / 1e9,
        epoch_losses,
    }
}

fn json_escape_free(label: &str) -> &str {
    // Labels are static identifiers; nothing to escape.
    label
}

fn write_json(
    runs: &[TrainRun],
    take: usize,
    tokens: usize,
    epochs: usize,
    kernels: &[(String, f64)],
) {
    // `cargo bench` runs with the package directory as cwd; default to the
    // workspace root so the artefact lands next to README.md.
    let path = std::env::var("BENCH_TRAIN_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json").to_string()
    });
    let reference = runs.iter().find(|r| r.label == "reference_scalar");
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"city\": \"xian-s\", \"scale\": \"quick\", \"trajectories\": {take}, \"tokens_per_epoch\": {tokens}, \"epochs\": {epochs}, \"quick_mode\": {}}},\n",
        quick_mode()
    ));
    let cfg = config();
    out.push_str(&format!(
        "  \"config\": {{\"embed_dim\": {}, \"hidden_dim\": {}, \"latent_dim\": {}, \"rp_latent_dim\": {}, \"batch_size\": {}, \"micro_batch\": {}}},\n",
        cfg.embed_dim, cfg.hidden_dim, cfg.latent_dim, cfg.rp_latent_dim, cfg.batch_size, cfg.micro_batch
    ));
    out.push_str(&format!(
        "  \"baseline_pre_pr\": {{\"seconds_per_epoch\": {PRE_PR_SECONDS_PER_EPOCH}, \"note\": \"measured at seed commit b660a21 on the full (non-quick) workload\"}},\n",
    ));
    out.push_str("  \"trainers\": {\n");
    for (i, r) in runs.iter().enumerate() {
        let speedup = reference.map(|b| b.seconds_per_epoch / r.seconds_per_epoch).unwrap_or(1.0);
        // The frozen pre-PR baseline was measured on the full workload;
        // quick-mode slices are not comparable to it.
        let vs_pre_pr = if quick_mode() {
            "null".to_string()
        } else {
            format!("{:.2}", PRE_PR_SECONDS_PER_EPOCH / r.seconds_per_epoch)
        };
        out.push_str(&format!(
            "    \"{}\": {{\"seconds_per_epoch\": {:.6}, \"tokens_per_s\": {:.1}, \"gmacs_fwd_bwd\": {:.3}, \"speedup_vs_reference\": {:.2}, \"speedup_vs_pre_pr\": {vs_pre_pr}, \"final_loss\": {:.9}}}{}\n",
            json_escape_free(r.label),
            r.seconds_per_epoch,
            r.tokens_per_s,
            r.gmacs,
            speedup,
            r.epoch_losses.last().copied().unwrap_or(f64::NAN),
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"kernels_gmacs\": {\n");
    for (i, (name, gmacs)) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {gmacs:.2}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

/// GMAC/s of one kernel at a fixed shape, measured over a time budget.
fn kernel_gmacs(macs_per_call: usize, mut call: impl FnMut()) -> f64 {
    // Warm-up.
    call();
    let budget = if quick_mode() { 0.02 } else { 0.25 };
    let started = Instant::now();
    let mut calls = 0u64;
    while started.elapsed().as_secs_f64() < budget {
        call();
        calls += 1;
    }
    let secs = started.elapsed().as_secs_f64();
    (macs_per_call as u64 * calls) as f64 / secs / 1e9
}

fn bench_training(c: &mut Criterion) {
    let (city, take, epochs) = workload();
    let tokens: usize = city.data.train[..take].iter().map(|t| t.len()).sum();

    let runs = vec![
        run_trainer("reference_scalar", &city, take, epochs, None),
        run_trainer("microbatch_1", &city, take, epochs, Some(1)),
        run_trainer("microbatch_8", &city, take, epochs, Some(8)),
    ];
    for r in &runs {
        println!(
            "train_epoch/{:<18} {:>9.4} s/epoch  {:>9.0} tokens/s  {:>7.2} GMAC/s  final loss {:.6}",
            r.label, r.seconds_per_epoch, r.tokens_per_s, r.gmacs, r.epoch_losses.last().unwrap()
        );
    }

    // Regression guard: the micro-batched losses must track the scalar
    // reference per epoch. A broken kernel or backward rule shows up here
    // long before the timings drift.
    let reference = &runs[0];
    for r in &runs[1..] {
        for (epoch, (a, b)) in r.epoch_losses.iter().zip(&reference.epoch_losses).enumerate() {
            let rel = (a - b).abs() / b.abs().max(1e-12);
            assert!(
                rel < 1e-4,
                "{}: epoch {epoch} loss {a} diverged from reference {b} (rel {rel:e})",
                r.label
            );
        }
    }

    // Kernel-level GMAC/s at the training hot shapes: the full-vocab head
    // (forward A·Bᵀ, backward dW = Aᵀ·B) and the batched GRU projection.
    let mut rng = StdRng::seed_from_u64(7);
    let vocab = city.net.num_segments();
    let (n_rows, dh) = (128usize, 48usize);
    let x = Tensor::rand_uniform(n_rows, dh, -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(vocab, dh, -1.0, 1.0, &mut rng);
    let mut logits = Tensor::zeros(n_rows, vocab);
    let g = Tensor::rand_uniform(n_rows, vocab, -1.0, 1.0, &mut rng);
    let mut dw = Tensor::zeros(vocab, dh);
    let gru_x = Tensor::rand_uniform(8, 24, -1.0, 1.0, &mut rng);
    let gru_w = Tensor::rand_uniform(24, 144, -1.0, 1.0, &mut rng);
    let mut gru_out = Tensor::zeros(8, 144);

    let kernels = vec![
        (
            format!("matmul_t_{n_rows}x{dh}x{vocab}"),
            kernel_gmacs(n_rows * dh * vocab, || x.matmul_t_into(&w, &mut logits)),
        ),
        (
            format!("matmul_tn_{n_rows}x{vocab}x{dh}"),
            kernel_gmacs(n_rows * vocab * dh, || g.matmul_tn_into(&x, &mut dw)),
        ),
        (
            "matmul_8x24x144".to_string(),
            kernel_gmacs(8 * 24 * 144, || gru_x.matmul_into(&gru_w, &mut gru_out)),
        ),
    ];
    for (name, gmacs) in &kernels {
        println!("kernel/{name:<28} {gmacs:>8.2} GMAC/s");
    }

    write_json(&runs, take, tokens, epochs, &kernels);

    // Keep a Criterion entry so the harness records something per run.
    c.bench_function("training/noop_marker", |b| b.iter(|| std::hint::black_box(0)));
}

criterion_group!(training, bench_training);
criterion_main!(training);
