//! Fleet-scoring throughput: micro-batched stepping vs naive per-session
//! `push` looping across concurrent-session counts (64 / 512 / 4096).
//!
//! Two complementary views:
//!
//! * Criterion timings of one scoring *wave* (every session advances one
//!   segment): `naive_wave` loops `OnlineScorer::push`, `batched_wave`
//!   makes one `CausalTad::push_batch` call with a step cache.
//! * An end-to-end events/sec summary (printed after the criterion runs)
//!   replaying full interleaved streams through the naive loop, a 1-shard
//!   `tad-serve` engine, and a default-shard engine — the acceptance
//!   numbers for the serving subsystem.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use causaltad::{CausalTad, CausalTadConfig, ScorerState};
use tad_bench::{fleet_walks, time_engine_fleet, time_naive_fleet};
use tad_eval::cities::{xian_s, Scale};
use tad_serve::FleetConfig;

const SESSION_COUNTS: [usize; 3] = [64, 512, 4096];
const WALK_LEN: usize = 24;

fn trained_model() -> Arc<CausalTad> {
    let city = tad_trajsim::generate_city(&xian_s(Scale::Quick));
    // Serving-realistic widths; one epoch keeps bench start-up short.
    let cfg = CausalTadConfig {
        embed_dim: 64,
        hidden_dim: 256,
        latent_dim: 32,
        epochs: 1,
        ..CausalTadConfig::test_scale()
    };
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    Arc::new(model)
}

/// Sessions mid-trip, ready to consume one more segment each.
fn wave_fixture(model: &CausalTad, walks: &[Vec<u32>]) -> (Vec<ScorerState>, Vec<u32>) {
    let states: Vec<ScorerState> = walks
        .iter()
        .map(|w| {
            let mut st = model
                .start_state(w[0], *w.last().expect("non-empty"), 0)
                .expect("valid walk endpoints");
            model.push_state(&mut st, w[0]);
            st
        })
        .collect();
    let segs: Vec<u32> = walks.iter().map(|w| w[1]).collect();
    (states, segs)
}

fn bench_waves(c: &mut Criterion) {
    let model = trained_model();
    let cache = model.build_step_cache();

    let mut group = c.benchmark_group("fleet_wave");
    group.sample_size(20);
    for &n in &SESSION_COUNTS {
        let walks = fleet_walks(&model, n, 4, 11);
        let (states, segs) = wave_fixture(&model, &walks);

        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter_batched(
                || states.clone(),
                |mut states| {
                    for (st, &seg) in states.iter_mut().zip(&segs) {
                        model.push_state(st, seg);
                    }
                    states
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter_batched(
                || states.clone(),
                |mut states| {
                    model.push_batch(Some(&cache), &mut states, &segs);
                    states
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let model = trained_model();
    let shards = FleetConfig::default().num_shards;

    // One criterion entry so the scenario shows up in bench output...
    let walks_512 = fleet_walks(&model, 512, WALK_LEN, 7);
    c.bench_function("fleet_engine_512x24_events", |b| {
        b.iter(|| time_engine_fleet(&model, &walks_512, shards))
    });

    // The headline acceptance number: events/sec of batched stepping vs
    // the naive per-session push loop, measured over repeated full waves.
    println!();
    println!(
        "{:>10} {:>16} {:>16} {:>10}   (pure stepping, one wave = one segment/session)",
        "sessions", "naive ev/s", "batched ev/s", "speedup"
    );
    for &n in &SESSION_COUNTS {
        let walks = fleet_walks(&model, n, 4, 11);
        let (states, segs) = wave_fixture(&model, &walks);
        let reps = (2048 / n).max(1);
        let naive_t = {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                let mut s = states.clone();
                for (st, &seg) in s.iter_mut().zip(&segs) {
                    model.push_state(st, seg);
                }
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let cache = model.build_step_cache();
        let batched_t = {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                let mut s = states.clone();
                model.push_batch(Some(&cache), &mut s, &segs);
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        println!(
            "{:>10} {:>16.0} {:>16.0} {:>9.2}x",
            n,
            n as f64 / naive_t,
            n as f64 / batched_t,
            naive_t / batched_t
        );
    }

    // ...and the full end-to-end comparison (engine ingest + lifecycle +
    // scoring). On a single-core host the multi-shard row cannot beat x1;
    // on real multi-core serving hardware it scales with shards.
    println!();
    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>16} {:>10} {:>10}",
        "sessions",
        "events",
        "naive ev/s",
        "fleet x1 ev/s",
        format!("fleet x{shards} ev/s"),
        "x1 gain",
        "xN gain"
    );
    for &n in &SESSION_COUNTS {
        let walks = fleet_walks(&model, n, WALK_LEN, 7);
        let events: usize = walks.iter().map(Vec::len).sum();
        let naive = events as f64 / time_naive_fleet(&model, &walks);
        let one = events as f64 / time_engine_fleet(&model, &walks, 1);
        let many = events as f64 / time_engine_fleet(&model, &walks, shards);
        println!(
            "{:>10} {:>10} {:>14.0} {:>16.0} {:>16.0} {:>9.2}x {:>9.2}x",
            n,
            events,
            naive,
            one,
            many,
            one / naive,
            many / naive
        );
    }
}

criterion_group!(fleet, bench_waves, bench_end_to_end);
criterion_main!(fleet);
