//! End-to-end scoring and training-step benchmarks: CausalTAD vs the
//! representative baselines (Fig. 7's efficiency comparison in micro form).

use criterion::{criterion_group, criterion_main, Criterion};

use causaltad::{CausalTad, CausalTadConfig};
use tad_baselines::{BaselineConfig, Detector, Iboat, IboatConfig, Vsae};
use tad_trajsim::{generate_city, CityConfig, Trajectory};

struct Fixture {
    causal: CausalTad,
    vsae: Vsae,
    iboat: Iboat,
    trip: Trajectory,
}

fn fixture() -> Fixture {
    let city = generate_city(&CityConfig::test_scale(902));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 1;
    let mut causal = CausalTad::new(&city.net, cfg);
    causal.fit(&city.data.train);
    let mut vsae = Vsae::vsae(BaselineConfig { epochs: 1, ..BaselineConfig::test_scale() });
    vsae.fit(&city.net, &city.data.train);
    let mut iboat = Iboat::new(IboatConfig::default());
    iboat.fit(&city.net, &city.data.train);
    let trip = city.data.test_id[0].clone();
    Fixture { causal, vsae, iboat, trip }
}

fn bench_full_scoring(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("score_full_trajectory");
    group.bench_function("CausalTAD", |b| {
        b.iter(|| std::hint::black_box(f.causal.score(std::hint::black_box(&f.trip))))
    });
    group.bench_function("VSAE", |b| {
        b.iter(|| std::hint::black_box(f.vsae.score(std::hint::black_box(&f.trip))))
    });
    group.bench_function("iBOAT", |b| {
        b.iter(|| std::hint::black_box(f.iboat.score(std::hint::black_box(&f.trip))))
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let city = generate_city(&CityConfig::test_scale(903));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 1;
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    group.bench_function("CausalTAD_tiny_city", |b| {
        b.iter(|| {
            let mut model = CausalTad::new(&city.net, cfg.clone());
            model.fit(&city.data.train)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_scoring, bench_training_step);
criterion_main!(benches);
