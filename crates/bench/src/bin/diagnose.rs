//! Diagnostic tool: decomposes the anomaly score by pool and sweeps λ.
//!
//! Prints, for each test pool of the xian-s city: mean length, the share of
//! segments never seen in training, mean scaling factor per segment, and
//! mean likelihood NLL per segment — the quantities that explain *why*
//! CausalTAD ranks pools the way it does. Then reports a ROC-AUC λ-sweep
//! against VSAE.
//!
//! ```sh
//! cargo run --release -p tad-bench --bin diagnose -- [bias] [noise] [epochs]
//! ```

use std::collections::HashMap;

use causaltad::CausalTadConfig;
use tad_baselines::{BaselineConfig, Detector, Vsae};
use tad_eval::cities::{xian_s, Scale};
use tad_eval::harness::evaluate;
use tad_eval::wrappers::CausalTadDetector;
use tad_trajsim::{generate_city, Trajectory};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bias: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(-1.0);
    let noise: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(-1.0);
    let epochs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);

    let mut cc = xian_s(Scale::Quick);
    if bias >= 0.0 {
        cc.sd.popularity_bias = bias;
    }
    if noise >= 0.0 {
        cc.route.utility_noise = noise;
    }
    let city = generate_city(&cc);
    println!(
        "city: {} segments | {} | bias {} noise {}",
        city.net.num_segments(),
        city.data.summary(),
        cc.sd.popularity_bias,
        cc.route.utility_noise
    );

    let mut freq: HashMap<u32, usize> = HashMap::new();
    for t in &city.data.train {
        for s in &t.segments {
            *freq.entry(s.0).or_default() += 1;
        }
    }

    let mut vsae = Vsae::vsae(BaselineConfig { epochs, ..Default::default() });
    vsae.fit(&city.net, &city.data.train);
    let mut causal = CausalTadDetector::new(CausalTadConfig { epochs, ..Default::default() });
    causal.fit(&city.net, &city.data.train);
    let model = causal.model().expect("trained");
    let table = model.scaling().expect("trained");

    let stats = |name: &str, pool: &[Trajectory]| {
        let mut nseg = 0usize;
        let mut unseen = 0usize;
        let mut scale = 0.0;
        let mut nll = 0.0;
        for t in pool {
            let sd = t.sd_pair();
            let mut s = model.online(sd.source.0, sd.dest.0, t.time_slot);
            for &seg in &t.segments {
                s.push(seg.0);
                nseg += 1;
                if freq.get(&seg.0).copied().unwrap_or(0) == 0 {
                    unseen += 1;
                }
                scale += table.log_scale(seg.0, t.time_slot);
            }
            nll += s.likelihood_nll();
        }
        println!(
            "  {name:<9} len {:5.1}  unseen% {:4.1}  scale/seg {:5.2}  nll/seg {:5.2}",
            nseg as f64 / pool.len() as f64,
            unseen as f64 / nseg as f64 * 100.0,
            scale / nseg as f64,
            nll / nseg as f64
        );
    };
    println!("pool decomposition:");
    stats("test_id", &city.data.test_id);
    stats("test_ood", &city.data.test_ood);
    stats("detour", &city.data.detour);
    stats("switch", &city.data.switch);

    let ev = |det: &dyn Detector, normals: &[Trajectory], anomalies: &[Trajectory]| {
        evaluate(det, normals, anomalies).roc_auc
    };
    println!("ROC-AUC:");
    println!(
        "  VSAE        ID-D {:.3} OOD-D {:.3} ID-S {:.3} OOD-S {:.3}",
        ev(&vsae, &city.data.test_id, &city.data.detour),
        ev(&vsae, &city.data.test_ood, &city.data.detour),
        ev(&vsae, &city.data.test_id, &city.data.switch),
        ev(&vsae, &city.data.test_ood, &city.data.switch),
    );
    for lambda in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        causal.set_lambda(lambda);
        println!(
            "  CTAD l={lambda:<5} ID-D {:.3} OOD-D {:.3} ID-S {:.3} OOD-S {:.3}",
            ev(&causal, &city.data.test_id, &city.data.detour),
            ev(&causal, &city.data.test_ood, &city.data.detour),
            ev(&causal, &city.data.test_id, &city.data.switch),
            ev(&causal, &city.data.test_ood, &city.data.switch),
        );
    }
}
