//! Reproduces Table I: in-distribution evaluation of all methods.

use tad_bench::{emit, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let study = Study::run(opts.clone());
    let table = study.table1();
    emit(&opts, "table1_id", &table);
}
