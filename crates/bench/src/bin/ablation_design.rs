//! Extra design ablations (DESIGN.md): road-constrained decoding, the SD
//! decoder, and the time-factorised scaling extension (§V-E.3).

use tad_bench::{ablation_design, emit, Opts};

fn main() {
    let opts = Opts::from_args();
    let table = ablation_design(&opts);
    emit(&opts, "ablation_design", &table);
}
