//! Reproduces Table III: the TG-VAE / RP-VAE ablation study.

use tad_bench::{emit, table3, Opts};

fn main() {
    let opts = Opts::from_args();
    let table = table3(&opts);
    emit(&opts, "table3_ablation", &table);
}
