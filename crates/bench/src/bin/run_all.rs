//! Runs Tables I/II and Figs. 5/6/7b/8 from a single training pass, then
//! prints the recorded training times. The cheapest way to regenerate the
//! bulk of EXPERIMENTS.md.

use tad_bench::{emit, training_times, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let mut study = Study::run(opts.clone());
    emit(&opts, "table1_id", &study.table1());
    emit(&opts, "table2_ood", &study.table2());
    emit(&opts, "fig5_stability", &study.fig5());
    emit(&opts, "fig6_online", &study.fig6());
    emit(&opts, "fig7b_inference", &study.fig7b());
    emit(&opts, "fig8_lambda", &study.fig8());
    emit(&opts, "training_times", &training_times(&study));
}
