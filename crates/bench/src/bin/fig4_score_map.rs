//! Reproduces Fig. 4: per-segment anomaly scores of a normal trajectory
//! with an unseen SD pair, under VSAE and CausalTAD.

use tad_bench::{emit, fig4, Opts};

fn main() {
    let opts = Opts::from_args();
    let table = fig4(&opts);
    emit(&opts, "fig4_score_map", &table);
}
