//! Reproduces Fig. 6: online evaluation under different observed ratios.

use tad_bench::{emit, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let study = Study::run(opts.clone());
    let table = study.fig6();
    emit(&opts, "fig6_online", &table);
}
