//! Cluster soak harness: drives the full serving stack — `tad-router`
//! front door over N `tad-net` backends — at its design point
//! (O(10⁵) concurrent mixed-length trips with churn) and reports the
//! fleet-wide latency histograms the run produced, pulled over the wire
//! with a single `MetricsRequest` against the router.
//!
//! The workload is round-based: every open trip streams one segment per
//! round, trips have mixed lengths (8–40 segments, deterministic per trip
//! id), and each finished trip is immediately replaced by a fresh one so
//! the concurrency level holds steady while trip ids churn. Every round
//! ends at a flush barrier, so the harness can assert the zero-loss
//! contract: every streamed segment came back scored.
//!
//! Output: `BENCH_soak.json` at the workspace root (override with
//! `SOAK_OUT`) carrying sustained segments/s plus p50/p99/p999 of
//! `serve.score_latency_ns` across the whole fleet.
//!
//! Knobs (environment):
//! * `SOAK_QUICK=1` — CI smoke scale (2 000 trips, 12 rounds).
//! * `SOAK_HOSTILE=1` — hostile-stream mode: producers duplicate ~25% of
//!   segments (at-least-once transport) and the backends run a
//!   `StreamPolicy` with a dedup window. Each producer mirrors the dedup
//!   decision, so the zero-loss contract tightens to an exact balance:
//!   every admitted segment comes back scored, every duplicate comes back
//!   as a `PolicyNotice`, and the fleet's `serve.dedup_dropped` counter
//!   equals the duplicates injected — nothing lost, nothing double-scored.
//! * `SOAK_FAILOVER=1` — self-healing mode: the fleet runs with one
//!   standby backend and a recovery journal. Mid-run the harness
//!   checkpoints the fleet, then kills an active backend under full load;
//!   the router promotes the standby, replays the journal tail, and the
//!   producers — who are never told — must still see every admitted
//!   segment come back scored exactly once at its round barrier. The
//!   measured recovery time lands in the JSON artefact.
//! * `SOAK_OVERLOAD=1` — overload-protection mode: every backend runs a
//!   per-connection ingest rate limit (`SOAK_RATE` events/s, default
//!   2 500 quick / 20 000 full) while the producers offer load as fast as
//!   they can write — far above 2x the configured admitted rate. The
//!   backends throttle the router's links (typed trip-less `Throttled`
//!   notices, reads paused, resumed on refill); producers are paced by
//!   transport backpressure and are never told. The per-round zero-loss
//!   balance must keep holding for every admitted segment, the sustained
//!   rate must stay under the configured cap, and the throttle ledgers
//!   must reconcile exactly: the router's `router.throttled` count equals
//!   the fleet's `net.throttled` episode count — every episode notice a
//!   backend emitted was seen at the router exactly once.
//! * `SOAK_TRIPS` — concurrent trips (default 100 000).
//! * `SOAK_ROUNDS` — streaming rounds (default 48).
//! * `SOAK_PRODUCERS` — producer connections on the front door
//!   (default 4). Elevated counts spread the same trip load across many
//!   thin connections, exercising the event loop's cross-connection
//!   cohort coalescing and per-connection fairness under churn.
//! * `SOAK_OUT` — artefact path.
//!
//! In every mode the harness also proves the observability path honest:
//! the wire-merged fleet snapshot's `serve.*` entries must be
//! **bit-identical** (struct equality *and* re-encoded bytes) to merging
//! each backend's in-process registry directly — the same invariant the
//! CI quick run gates on.

use std::sync::Arc;
use std::time::Instant;

use causaltad::{CausalTad, CausalTadConfig};
use tad_bench::fleet_walks;
use tad_eval::cities::{xian_s, Scale};
use tad_metrics::{snapshot_to_bytes, HistogramSnapshot, MetricsSnapshot};
use tad_net::{Client, NetConfig, NetServer, Response};
use tad_router::{RouterConfig, RouterServer};
use tad_serve::{FleetConfig, PolicyAction, StreamPolicy};

const BACKENDS: usize = 2;
const MIN_LEN: u64 = 8;
const MAX_LEN: u64 = 40;

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Mixed trip lengths, deterministic in the trip id so respawned trips
/// keep the distribution without any shared RNG.
fn trip_len(id: u64) -> u64 {
    MIN_LEN + (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % (MAX_LEN - MIN_LEN + 1)
}

fn trained_model() -> Arc<CausalTad> {
    let city = tad_trajsim::generate_city(&xian_s(Scale::Quick));
    let cfg = CausalTadConfig { epochs: 1, ..CausalTadConfig::test_scale() };
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    Arc::new(model)
}

/// Whether the hostile transport duplicates this (trip, step) send —
/// deterministic so every run replays the same fault pattern (~25%).
fn dup_fault(id: u64, step: u64) -> bool {
    (id ^ step).wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 62 == 0
}

/// What one producer streamed and got back: segments scored, trips
/// completed, duplicates injected, and dedup `PolicyNotice`s received.
#[derive(Default)]
struct ProducerTally {
    scored: u64,
    completed: u64,
    dups_sent: u64,
    dedup_notices: u64,
    gap_notices: u64,
}

/// One producer: owns `trips` concurrent trips, streams one segment per
/// trip per round, replaces finished trips, flushes each round, and
/// counts scores. In hostile mode it re-sends ~25% of segments
/// ([`dup_fault`]) and mirrors the backend's dedup decision (window 1,
/// compare against the last *admitted* segment), so each round's barrier
/// can assert the exact balance: admitted sends come back scored,
/// duplicate sends come back as dedup `PolicyNotice`s.
fn producer(
    addr: std::net::SocketAddr,
    walks: Arc<Vec<Vec<u32>>>,
    first_id: u64,
    id_stride: u64,
    trips: usize,
    rounds: usize,
    hostile: bool,
) -> ProducerTally {
    let mut client = Client::connect(addr).expect("connect producer");
    // Live trips: (id, walk index, next step, last admitted segment).
    let mut live: Vec<(u64, usize, u64, Option<u32>)> = Vec::with_capacity(trips);
    let mut next_id = first_id;
    let mut spawn = |client: &mut Client, live: &mut Vec<(u64, usize, u64, Option<u32>)>| {
        let id = next_id;
        next_id += id_stride;
        let walk = &walks[(id % walks.len() as u64) as usize];
        client
            .trip_start(id, walk[0], *walk.last().expect("non-empty"), (id % 24) as u8)
            .expect("write start");
        live.push((id, (id % walks.len() as u64) as usize, 0, None));
    };
    for _ in 0..trips {
        spawn(&mut client, &mut live);
    }
    let mut tally = ProducerTally::default();
    let drain = |client: &mut Client, tally: &mut ProducerTally| -> (u64, u64) {
        let (mut scores, mut notices) = (0u64, 0u64);
        while let Some(resp) = client.try_recv() {
            match resp {
                Response::Score(_) => {
                    tally.scored += 1;
                    scores += 1;
                }
                Response::TripComplete(_) => tally.completed += 1,
                Response::PolicyNotice { action: PolicyAction::DedupDropped, .. } if hostile => {
                    tally.dedup_notices += 1;
                    notices += 1;
                }
                // Long-lived trips cycle their pool walk; the wrap-around
                // step is an off-network jump the active policy notices
                // (and scores through). Still admitted, still scored.
                Response::PolicyNotice { action: PolicyAction::GapScoredThrough, .. }
                    if hostile =>
                {
                    tally.gap_notices += 1;
                }
                other => panic!("unexpected response in soak: {other:?}"),
            }
        }
        (scores, notices)
    };
    for _ in 0..rounds {
        let mut admitted = 0u64;
        let mut dropped = 0u64;
        let mut respawn = 0usize;
        live.retain_mut(|(id, widx, step, last)| {
            let walk = &walks[*widx];
            // Cycle the pool walk when the trip outlives it: segments stay
            // in-vocab, which is all the engine requires.
            let seg = walk[(*step % walk.len() as u64) as usize];
            let sends = if hostile && dup_fault(*id, *step) { 2 } else { 1 };
            for _ in 0..sends {
                client.segment(*id, seg).expect("write segment");
                // Mirror the dedup-window-1 decision the backend makes.
                if hostile && *last == Some(seg) {
                    dropped += 1;
                } else {
                    admitted += 1;
                    *last = Some(seg);
                }
            }
            tally.dups_sent += sends - 1;
            *step += 1;
            if *step >= trip_len(*id) {
                client.trip_end(*id).expect("write end");
                respawn += 1;
                false
            } else {
                true
            }
        });
        // Churn: hold the concurrency level by starting one trip per
        // finished trip, before the barrier so the starts ride the same
        // batch of writes.
        for _ in 0..respawn {
            spawn(&mut client, &mut live);
        }
        client.flush().expect("round barrier");
        let (scores, notices) = drain(&mut client, &mut tally);
        assert_eq!(
            scores, admitted,
            "a round's admitted segments must all come back scored at its barrier"
        );
        assert_eq!(
            notices, dropped,
            "a round's duplicate segments must all come back as dedup notices at its barrier"
        );
    }
    // Close out still-open trips so the backends end the run empty.
    for &(id, _, _, _) in &live {
        client.trip_end(id).expect("write final end");
    }
    client.flush().expect("final barrier");
    drain(&mut client, &mut tally);
    tally
}

fn quantiles(h: &HistogramSnapshot) -> (u64, u64, u64) {
    (h.p50(), h.p99(), h.p999())
}

fn main() {
    let quick = env_flag("SOAK_QUICK");
    let hostile = env_flag("SOAK_HOSTILE");
    let failover = env_flag("SOAK_FAILOVER");
    let overload = env_flag("SOAK_OVERLOAD");
    let trips = env_usize("SOAK_TRIPS", if quick { 2_000 } else { 100_000 });
    let rounds = env_usize("SOAK_ROUNDS", if quick { 12 } else { 48 });
    let producers = env_usize("SOAK_PRODUCERS", 4).max(1);
    // The admitted rate each backend grants its (one) router link; the
    // producers' full-speed offered load sits far above 2x this.
    let rate = env_usize("SOAK_RATE", if quick { 2_500 } else { 20_000 }) as u64;

    eprintln!(
        "soak: training model (quick={quick}, hostile={hostile}, failover={failover}, \
         overload={overload})..."
    );
    let model = trained_model();
    let walks = Arc::new(fleet_walks(&model, 256, MAX_LEN as usize, 1234));

    let fleet_cfg = FleetConfig {
        num_shards: 2,
        queue_capacity: 65_536,
        // The design point is O(10^5) live sessions; neither the TTL nor
        // the LRU cap may reap them mid-soak.
        session_ttl: std::time::Duration::from_secs(3_600),
        max_sessions_per_shard: trips,
        // Hostile mode turns the dedup window on; the producers mirror its
        // decision so every round can assert the exact admit/drop balance.
        policy: if hostile {
            StreamPolicy { dedup_window: 1, ..StreamPolicy::default() }
        } else {
            StreamPolicy::default()
        },
        ..FleetConfig::default()
    };
    // Overload mode throttles each backend's (single) router link: the
    // token bucket paces admitted ingest at `rate` events/s while the
    // producers keep offering full speed.
    let net_cfg = if overload {
        NetConfig { rate_limit_segments_per_s: rate, ..NetConfig::default() }
    } else {
        NetConfig::default()
    };
    let mut backends: Vec<NetServer> = (0..BACKENDS + usize::from(failover))
        .map(|_| {
            NetServer::builder(Arc::clone(&model))
                .fleet_config(fleet_cfg.clone())
                .net_config(net_cfg.clone())
                .bind("127.0.0.1:0")
                .expect("bind backend")
        })
        .collect();
    let router = RouterServer::builder()
        .backends(backends.iter().take(BACKENDS).map(|s| s.local_addr()))
        .standbys(backends.iter().skip(BACKENDS).map(|s| s.local_addr()))
        .config(RouterConfig {
            // The journal must absorb the traffic between the mid-run
            // checkpoint and the kill (plus the pre-checkpoint history);
            // size it to several full rounds. Replay of O(trips) sessions
            // takes real time at full scale, so producers wait it out.
            journal_limit: trips * 8 + 65_536,
            failover_wait: std::time::Duration::from_secs(120),
            ..RouterConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind router");
    let front = router.local_addr();
    eprintln!(
        "soak: router {front} over {BACKENDS} backends (+{} standby), \
         {trips} concurrent trips x {rounds} rounds across {producers} producer connections",
        usize::from(failover)
    );

    let per_producer = trips / producers;
    // In failover mode, active backend 0 is the victim: the driver thread
    // checkpoints the fleet once it has absorbed real traffic, then kills
    // it under full load. Producers are never told.
    let victim = failover.then(|| backends.remove(0));
    let started = Instant::now();
    let tallies: Vec<ProducerTally> = std::thread::scope(|scope| {
        let producers: Vec<_> = (0..producers as u64)
            .map(|p| {
                let walks = Arc::clone(&walks);
                scope.spawn(move || {
                    producer(front, walks, p, producers as u64, per_producer, rounds, hostile)
                })
            })
            .collect();
        let driver = victim.map(|victim| {
            let router = &router;
            scope.spawn(move || {
                // Wait until the victim has seen its trip starts plus a
                // couple of rounds of segments, so the kill lands mid-churn
                // with a genuinely dirty journal tail.
                let warm = Instant::now() + std::time::Duration::from_secs(600);
                while victim.net_stats().frames_in < trips as u64 && Instant::now() < warm {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                let sweep = router.checkpoint().expect("mid-soak checkpoint sweep");
                assert_eq!(
                    sweep.full_captures as usize, BACKENDS,
                    "the cold sweep fully captures every active backend"
                );
                eprintln!("soak: fleet checkpointed; killing active backend 0 under load");
                victim.shutdown();
                let deadline = Instant::now() + std::time::Duration::from_secs(300);
                while router.stats().failovers == 0 {
                    assert!(Instant::now() < deadline, "failover never completed");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                eprintln!(
                    "soak: standby promoted in {:.1} ms",
                    router.stats().last_recovery_micros as f64 / 1_000.0
                );
            })
        });
        let tallies = producers.into_iter().map(|h| h.join().expect("producer thread")).collect();
        if let Some(driver) = driver {
            driver.join().expect("failover driver");
        }
        tallies
    });
    let mut scored = 0u64;
    let mut completed = 0u64;
    let mut dups_sent = 0u64;
    let mut dedup_notices = 0u64;
    let mut gap_notices = 0u64;
    for t in tallies {
        scored += t.scored;
        completed += t.completed;
        dups_sent += t.dups_sent;
        dedup_notices += t.dedup_notices;
        gap_notices += t.gap_notices;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let seg_per_s = scored as f64 / elapsed;
    eprintln!(
        "soak: {scored} segments scored, {completed} trips completed in {elapsed:.1}s \
         ({seg_per_s:.1} seg/s sustained)"
    );

    // --- Fleet metrics over the wire, and the honesty proof. -------------
    let mut admin = Client::connect(front).expect("connect admin");
    admin.flush().expect("fleet quiesce");
    let fleet = admin.metrics().expect("fleet metrics over the wire");

    // The wire-merged `serve.*` view must be bit-identical to merging the
    // backends' in-process registries: same structs, same encoded bytes.
    let in_process: Vec<MetricsSnapshot> = backends.iter().map(|s| s.metrics()).collect();
    let expect = MetricsSnapshot::merged(&in_process).with_prefix("serve.");
    let got = fleet.with_prefix("serve.");
    assert_eq!(got, expect, "wire-merged serve.* metrics must equal in-process aggregation");
    assert_eq!(
        snapshot_to_bytes(&got),
        snapshot_to_bytes(&expect),
        "wire-merged serve.* metrics must re-encode to identical bytes"
    );
    eprintln!("soak: wire-merged fleet metrics are bit-identical to in-process aggregation");

    let score_latency =
        fleet.histogram("serve.score_latency_ns").expect("fleet score-latency histogram");
    if !failover {
        // In failover mode the dead backend took its latency samples down
        // with it and the promoted standby re-scored the journal tail, so
        // engine-side sample counts are not comparable to producer-observed
        // scores; the exactly-once contract is enforced at every round
        // barrier by every producer instead.
        assert_eq!(
            score_latency.count, scored,
            "the fleet histogram must hold exactly one sample per scored segment"
        );
    }
    // Metrics balance: the fleet-wide policy counters must equal the
    // notices the producers actually received over the wire — every
    // sanitization action was both counted and delivered, none invented.
    let fleet_dedup = fleet.counter("serve.dedup_dropped").unwrap_or(0);
    let fleet_gaps = fleet.counter("serve.gap_score_through").unwrap_or(0);
    assert_eq!(
        fleet_dedup, dedup_notices,
        "fleet dedup_dropped counter must balance the dedup notices delivered"
    );
    assert_eq!(
        fleet_gaps, gap_notices,
        "fleet gap_score_through counter must balance the gap notices delivered"
    );
    if hostile {
        assert!(dups_sent > 0, "hostile mode must have injected duplicates");
        assert!(
            dedup_notices >= dups_sent,
            "every injected duplicate must have been dedup-dropped \
             ({dedup_notices} notices < {dups_sent} duplicates)"
        );
        eprintln!(
            "soak: hostile balance holds — {dups_sent} duplicates injected, \
             {dedup_notices} dedup drops, {gap_notices} gap score-throughs, all accounted"
        );
    }

    // Overload reconciliation: the limiter must actually have engaged
    // (full-speed producers offer far more than the configured rate), the
    // sustained admitted rate must sit under the fleet-wide cap, and the
    // throttle ledgers must balance: every episode notice a backend
    // emitted (`net.throttled`, summed over the fleet) was seen and
    // counted at the router exactly once (`router.throttled`).
    let fleet_throttled = fleet.counter("net.throttled").unwrap_or(0);
    let router_throttled = fleet.counter("router.throttled").unwrap_or(0);
    if overload {
        assert!(fleet_throttled > 0, "overload mode never tripped the rate limiter");
        assert_eq!(
            router_throttled, fleet_throttled,
            "router throttle ledger must balance the fleet's episode count"
        );
        let cap = (BACKENDS as f64) * rate as f64;
        assert!(
            seg_per_s < cap * 1.5,
            "rate limiting must shape admitted throughput: {seg_per_s:.1} seg/s \
             against a {cap:.0} events/s fleet cap"
        );
        assert_eq!(fleet.counter("net.idle_reaped").unwrap_or(0), 0, "no collateral reaping");
        assert_eq!(fleet.counter("net.conns_rejected").unwrap_or(0), 0, "no collateral rejects");
        eprintln!(
            "soak: overload balance holds — {fleet_throttled} throttle episodes, \
             {seg_per_s:.1} admitted seg/s under the {cap:.0}/s cap, zero loss"
        );
    } else {
        assert_eq!(fleet_throttled, 0, "throttling must never engage outside overload mode");
    }

    let (p50, p99, p999) = quantiles(score_latency);
    let decode = fleet.histogram("net.frame_decode_ns").expect("frame-decode histogram");
    let (d50, d99, d999) = quantiles(decode);
    let batch = fleet.histogram("serve.batch_width").expect("batch-width histogram");

    let recovery_ms = if failover {
        let rstats = router.stats();
        assert_eq!(rstats.failovers, 1, "exactly one standby promotion");
        assert_eq!(rstats.standbys_available, 0, "the standby was consumed");
        assert_eq!(rstats.partition_epoch, 1, "the partition map flipped once");
        eprintln!(
            "soak: failover sustained zero loss — recovery took {:.1} ms",
            rstats.last_recovery_micros as f64 / 1_000.0
        );
        rstats.last_recovery_micros as f64 / 1_000.0
    } else {
        0.0
    };

    router.shutdown();
    let live_left: u64 = backends.into_iter().map(|s| s.shutdown().active_sessions).sum();
    assert_eq!(live_left, 0, "every soak trip must have been ended");

    let out = format!(
        "{{\n  \"workload\": {{\"concurrent_trips\": {trips}, \"rounds\": {rounds}, \
         \"producers\": {producers}, \"backends\": {BACKENDS}, \"trip_len\": [{MIN_LEN}, {MAX_LEN}], \
         \"quick_mode\": {quick}, \"hostile_mode\": {hostile}, \"failover_mode\": {failover}, \
         \"overload_mode\": {overload}}},\n  \
         \"sustained\": {{\"elapsed_s\": {elapsed:.3}, \"segments_scored\": {scored}, \
         \"trips_completed\": {completed}, \"segments_per_s\": {seg_per_s:.1}}},\n  \
         \"sanitization\": {{\"duplicates_injected\": {dups_sent}, \
         \"dedup_dropped\": {dedup_notices}, \"gap_score_through\": {gap_notices}}},\n  \
         \"overload\": {{\"enabled\": {overload}, \"rate_limit_per_conn\": {rate}, \
         \"throttle_episodes\": {fleet_throttled}, \"router_throttled\": {router_throttled}}},\n  \
         \"failover\": {{\"enabled\": {failover}, \"recovery_ms\": {recovery_ms:.1}}},\n  \
         \"score_latency_ns\": {{\"count\": {}, \"p50\": {p50}, \"p99\": {p99}, \"p999\": {p999}, \
         \"mean\": {:.1}}},\n  \
         \"frame_decode_ns\": {{\"p50\": {d50}, \"p99\": {d99}, \"p999\": {d999}}},\n  \
         \"batch_width\": {{\"p50\": {}, \"p99\": {}, \"mean\": {:.1}}}\n}}\n",
        score_latency.count,
        score_latency.mean(),
        batch.p50(),
        batch.p99(),
        batch.mean(),
    );
    let path = std::env::var("SOAK_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json").to_string()
    });
    match std::fs::write(&path, &out) {
        Ok(()) => eprintln!("soak: wrote {path}"),
        Err(e) => eprintln!("soak: warning: cannot write {path}: {e}"),
    }
    print!("{out}");
}
