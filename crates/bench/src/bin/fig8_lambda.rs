//! Reproduces Fig. 8: CausalTAD's performance under different values of λ
//! (re-scored on one trained model; the scaling table is λ-independent).

use tad_bench::{emit, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let mut study = Study::run(opts.clone());
    let table = study.fig8();
    emit(&opts, "fig8_lambda", &table);
}
