//! Reproduces Fig. 7: (a) training scalability vs train-set size and
//! (b) mean inference runtime per trajectory vs observed ratio; extends it
//! with (c) fleet-scoring throughput of the `tad-serve` engine vs naive
//! per-session looping.

use tad_bench::{emit, fig7a, fleet_throughput, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let table_a = fig7a(&opts);
    emit(&opts, "fig7a_training", &table_a);
    let study = Study::run(opts.clone());
    let table_b = study.fig7b();
    emit(&opts, "fig7b_inference", &table_b);
    let table_c = fleet_throughput(&opts);
    emit(&opts, "fig7c_fleet", &table_c);
}
