//! Reproduces Fig. 5: stability under different distribution-shift ratios.

use tad_bench::{emit, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let study = Study::run(opts.clone());
    let table = study.fig5();
    emit(&opts, "fig5_stability", &table);
}
