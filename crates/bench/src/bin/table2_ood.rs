//! Reproduces Table II: out-of-distribution evaluation of all methods.

use tad_bench::{emit, Opts, Study};

fn main() {
    let opts = Opts::from_args();
    let study = Study::run(opts.clone());
    let table = study.table2();
    emit(&opts, "table2_ood", &table);
}
