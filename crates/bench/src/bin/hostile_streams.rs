//! Hostile-stream AUC grid: corruption channels × ingest sanitization
//! policies, scored through the policy-configured fleet engine.

use tad_bench::{emit, hostile_streams, Opts};

fn main() {
    let opts = Opts::from_args();
    let table = hostile_streams(&opts);
    emit(&opts, "hostile_streams", &table);
}
