//! # tad-bench
//!
//! Benchmark harness for the CausalTAD reproduction: one binary per table
//! and figure of the paper's evaluation section, plus Criterion
//! micro-benches for the O(1) online-update claim and the substrates.
//!
//! Binaries (run with `--release`):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1_id` | Table I — in-distribution evaluation |
//! | `table2_ood` | Table II — out-of-distribution evaluation |
//! | `table3_ablation` | Table III — TG-VAE / RP-VAE ablation |
//! | `fig4_score_map` | Fig. 4 — per-segment score visualisation |
//! | `fig5_stability` | Fig. 5 — stability vs shift ratio |
//! | `fig6_online` | Fig. 6 — metric vs observed ratio |
//! | `fig7_efficiency` | Fig. 7 — training scalability + inference runtime |
//! | `fig8_lambda` | Fig. 8 — λ sweep |
//! | `ablation_design` | extra design ablations from DESIGN.md |
//! | `hostile_streams` | corruption × sanitization-policy ROC-AUC grid |
//! | `run_all` | Tables I/II + Figs 5/6/7b/8 sharing one training pass |
//! | `diagnose` | per-pool score decomposition + λ sweep (debugging tool) |
//!
//! All binaries accept `--scale quick|paper`, `--city xian|chengdu|both`,
//! `--out <dir>` (CSV dumps) and `--epochs <n>`.

pub mod experiments;
pub mod opts;
pub mod suite;

pub use experiments::{
    ablation_design, emit, fig4, fig7a, fleet_throughput, fleet_walks, hostile_streams, table3,
    time_engine_fleet, time_naive_fleet, training_times, Study,
};
pub use opts::{CityChoice, Opts};
