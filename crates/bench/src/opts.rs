//! Command-line options shared by every experiment binary.

use std::path::PathBuf;

use tad_eval::cities::Scale;

/// Which of the two standard cities to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CityChoice {
    Xian,
    Chengdu,
    Both,
}

/// Parsed options: `--scale quick|paper`, `--city xian|chengdu|both`,
/// `--out <dir>` (CSV output), `--epochs <n>` (override training length).
#[derive(Clone, Debug)]
pub struct Opts {
    pub scale: Scale,
    pub city: CityChoice,
    pub out_dir: Option<PathBuf>,
    pub epochs: Option<usize>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { scale: Scale::Quick, city: CityChoice::Both, out_dir: None, epochs: None }
    }
}

impl Opts {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <bin> [--scale quick|paper] [--city xian|chengdu|both] \
                     [--out <dir>] [--epochs <n>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Pure parser, testable without process state.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = Opts::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &str| -> Result<String, String> {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    opts.scale = Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?;
                }
                "--city" => {
                    opts.city = match value("--city")?.to_ascii_lowercase().as_str() {
                        "xian" | "xian-s" => CityChoice::Xian,
                        "chengdu" | "chengdu-s" => CityChoice::Chengdu,
                        "both" => CityChoice::Both,
                        other => return Err(format!("unknown city {other:?}")),
                    };
                }
                "--out" => opts.out_dir = Some(PathBuf::from(value("--out")?)),
                "--epochs" => {
                    opts.epochs = Some(
                        value("--epochs")?
                            .parse()
                            .map_err(|_| "--epochs needs an integer".to_string())?,
                    );
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Writes a CSV artefact when `--out` is set; always a no-op otherwise.
    pub fn write_csv(&self, name: &str, csv: &str) {
        let Some(dir) = &self.out_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: cannot write {path:?}: {e}");
        } else {
            eprintln!("wrote {path:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.city, CityChoice::Both);
        assert!(o.out_dir.is_none());
        assert!(o.epochs.is_none());
    }

    #[test]
    fn full_args() {
        let o = parse(&["--scale", "paper", "--city", "xian", "--out", "/tmp/x", "--epochs", "3"])
            .unwrap();
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.city, CityChoice::Xian);
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(o.epochs, Some(3));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--scale", "giant"]).is_err());
        assert!(parse(&["--scale"]).is_err());
    }
}
