//! Trained detector suites: one city, the full method roster, fitted and
//! ready for evaluation.

use std::time::{Duration, Instant};

use causaltad::CausalTadConfig;
use tad_baselines::{paper_baselines, BaselineConfig, Detector};
use tad_eval::cities::{chengdu_s, xian_s, Scale};
use tad_eval::harness::parallel_map;
use tad_eval::wrappers::{CausalTadDetector, CausalTadVariant};
use tad_trajsim::{generate_city, City};

use crate::opts::{CityChoice, Opts};

/// A fitted roster on one city: the seven boxed baselines plus CausalTAD
/// (kept concrete so experiments can reach `set_lambda` and the online
/// trace), with per-detector training times.
pub struct TrainedSuite {
    pub city: City,
    pub baselines: Vec<Box<dyn Detector>>,
    pub causal: CausalTadDetector,
    /// `(detector name, wall-clock fit time)`.
    pub train_times: Vec<(String, Duration)>,
}

impl TrainedSuite {
    /// All detectors in the paper's table order (baselines, then
    /// CausalTAD last).
    pub fn all(&self) -> Vec<(&str, &dyn Detector)> {
        let mut out: Vec<(&str, &dyn Detector)> =
            self.baselines.iter().map(|d| (d.name(), d.as_ref())).collect();
        out.push((self.causal.name(), &self.causal as &dyn Detector));
        out
    }

    /// Finds a fitted detector by display name.
    pub fn detector(&self, name: &str) -> Option<&dyn Detector> {
        self.all().into_iter().find(|(n, _)| *n == name).map(|(_, d)| d)
    }
}

/// Baseline configuration per scale.
pub fn baseline_config(scale: Scale, epochs_override: Option<usize>) -> BaselineConfig {
    let mut cfg = match scale {
        Scale::Quick => BaselineConfig { epochs: 20, ..Default::default() },
        Scale::Paper => BaselineConfig {
            epochs: 30,
            hidden_dim: 64,
            embed_dim: 32,
            latent_dim: 32,
            ..Default::default()
        },
    };
    if let Some(e) = epochs_override {
        cfg.epochs = e;
    }
    cfg
}

/// CausalTAD configuration per scale, aligned with the baselines'.
pub fn causaltad_config(scale: Scale, epochs_override: Option<usize>) -> CausalTadConfig {
    let b = baseline_config(scale, epochs_override);
    CausalTadConfig {
        embed_dim: b.embed_dim,
        hidden_dim: b.hidden_dim,
        latent_dim: b.latent_dim,
        epochs: b.epochs,
        batch_size: b.batch_size,
        lr: b.lr,
        grad_clip: b.grad_clip,
        num_time_slots: b.num_time_slots,
        seed: b.seed,
        ..Default::default()
    }
}

/// The cities selected by the options.
pub fn selected_cities(opts: &Opts) -> Vec<City> {
    let cfgs = match opts.city {
        CityChoice::Xian => vec![xian_s(opts.scale)],
        CityChoice::Chengdu => vec![chengdu_s(opts.scale)],
        CityChoice::Both => vec![xian_s(opts.scale), chengdu_s(opts.scale)],
    };
    cfgs.iter()
        .map(|c| {
            eprintln!("generating city {} ...", c.name);
            let city = generate_city(c);
            eprintln!("  {} segments, {}", city.net.num_segments(), city.data.summary());
            city
        })
        .collect()
}

/// Trains the full paper roster (7 baselines + CausalTAD) on a city.
/// Baselines fan out across all available cores; CausalTAD trains last.
pub fn train_full_roster(city: &City, opts: &Opts) -> TrainedSuite {
    let b_cfg = baseline_config(opts.scale, opts.epochs);
    let c_cfg = causaltad_config(opts.scale, opts.epochs);

    let jobs: Vec<_> = paper_baselines(&b_cfg)
        .into_iter()
        .map(|mut det| {
            let net = &city.net;
            let train = &city.data.train;
            move || {
                let started = Instant::now();
                eprintln!("training {} ...", det.name());
                det.fit(net, train);
                let elapsed = started.elapsed();
                eprintln!("  {} done in {elapsed:.1?}", det.name());
                (det, elapsed)
            }
        })
        .collect();
    let fitted = parallel_map(jobs, available_workers());

    let mut baselines = Vec::with_capacity(fitted.len());
    let mut train_times = Vec::with_capacity(fitted.len() + 1);
    for (det, elapsed) in fitted {
        train_times.push((det.name().to_string(), elapsed));
        baselines.push(det);
    }

    let mut causal = CausalTadDetector::new(c_cfg);
    let started = Instant::now();
    eprintln!("training CausalTAD ...");
    causal.fit(&city.net, &city.data.train);
    let elapsed = started.elapsed();
    eprintln!("  CausalTAD done in {elapsed:.1?}");
    train_times.push(("CausalTAD".to_string(), elapsed));

    TrainedSuite { city: city.clone(), baselines, causal, train_times }
}

/// Trains the ablation roster (Table III): full CausalTAD plus its two
/// single-module scoring variants. All three share the same configuration
/// and seed, so they converge to the same parameters and differ only in the
/// scoring path.
pub fn train_ablation_roster(city: &City, opts: &Opts) -> Vec<CausalTadDetector> {
    let c_cfg = causaltad_config(opts.scale, opts.epochs);
    [CausalTadVariant::Full, CausalTadVariant::TgOnly, CausalTadVariant::RpOnly]
        .into_iter()
        .map(|variant| {
            let mut det = CausalTadDetector::variant(c_cfg.clone(), variant);
            det.fit(&city.net, &city.data.train);
            det
        })
        .collect()
}

/// Number of worker threads for training fan-outs.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tad_trajsim::CityConfig;

    #[test]
    fn configs_align_across_scales() {
        for scale in [Scale::Quick, Scale::Paper] {
            let b = baseline_config(scale, None);
            let c = causaltad_config(scale, None);
            assert_eq!(b.hidden_dim, c.hidden_dim);
            assert_eq!(b.epochs, c.epochs);
        }
        assert_eq!(baseline_config(Scale::Quick, Some(7)).epochs, 7);
    }

    #[test]
    fn ablation_roster_has_three_variants() {
        let city = generate_city(&CityConfig::test_scale(601));
        let opts = Opts { epochs: Some(1), ..Opts::default() };
        let roster = train_ablation_roster(&city, &opts);
        let names: Vec<_> = roster.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["CausalTAD", "TG-VAE", "RP-VAE"]);
        for det in &roster {
            assert!(det.score(&city.data.test_id[0]).is_finite());
        }
    }
}
