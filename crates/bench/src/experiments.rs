//! One function per table/figure of the paper's evaluation section (§VI).
//!
//! Every function prints a Markdown table mirroring the paper's rows/series
//! and returns it (the binaries also dump CSV via `--out`). Absolute values
//! differ from the paper — the substrate is a synthetic city on CPU — but
//! the *shape* (method ordering, ID→OOD degradation, λ optimum, O(1)
//! updates, linear scalability) is the reproduction target recorded in
//! EXPERIMENTS.md.

use std::time::Instant;

use tad_baselines::Detector;
use tad_eval::harness::{evaluate, evaluate_at_ratio, mix_normals, ComboResult};
use tad_eval::report::{improvement_pct, Table};
use tad_eval::wrappers::CausalTadDetector;
use tad_trajsim::Trajectory;

use crate::opts::Opts;
use crate::suite::{
    causaltad_config, selected_cities, train_ablation_roster, train_full_roster, TrainedSuite,
};

/// A full study: every selected city trained with the complete roster.
pub struct Study {
    pub opts: Opts,
    pub suites: Vec<TrainedSuite>,
}

impl Study {
    /// Generates the cities and trains the roster on each.
    pub fn run(opts: Opts) -> Self {
        let suites = selected_cities(&opts).iter().map(|c| train_full_roster(c, &opts)).collect();
        Study { opts, suites }
    }

    /// The four test combinations of one suite, ID or OOD flavoured.
    fn combos(
        suite: &TrainedSuite,
        ood: bool,
    ) -> [(&'static str, &[Trajectory], &[Trajectory]); 2] {
        let normals: &[Trajectory] =
            if ood { &suite.city.data.test_ood } else { &suite.city.data.test_id };
        [
            ("Detour", normals, suite.city.data.detour.as_slice()),
            ("Switch", normals, suite.city.data.switch.as_slice()),
        ]
    }

    fn quality_table(&self, title: &str, ood: bool) -> Table {
        let mut columns = vec!["Method".to_string()];
        for suite in &self.suites {
            for anomaly in ["Detour", "Switch"] {
                columns.push(format!("{} {anomaly} ROC-AUC", suite.city.name));
                columns.push(format!("{} {anomaly} PR-AUC", suite.city.name));
            }
        }
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut table = Table::new(title, &col_refs);

        // Collect per-method metric vectors so the Improvement row can
        // compare CausalTAD against the best baseline per column.
        let method_names: Vec<&str> = self.suites[0].all().iter().map(|(n, _)| *n).collect();
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); method_names.len()];
        for suite in &self.suites {
            for (anomaly, normals, anomalies) in Self::combos(suite, ood) {
                let _ = anomaly;
                for (mi, (_, det)) in suite.all().iter().enumerate() {
                    let r = evaluate(*det, normals, anomalies);
                    per_method[mi].push(r.roc_auc);
                    per_method[mi].push(r.pr_auc);
                }
            }
        }
        for (mi, name) in method_names.iter().enumerate() {
            let mut row = vec![name.to_string()];
            row.extend(per_method[mi].iter().map(|&x| Table::metric(x)));
            table.push_row(row);
        }
        // Improvement row: CausalTAD (last) vs best baseline, per column.
        let causal_idx = method_names.len() - 1;
        let mut row = vec!["Improvement".to_string()];
        for col in 0..per_method[0].len() {
            let baselines: Vec<f64> = per_method[..causal_idx].iter().map(|m| m[col]).collect();
            row.push(improvement_pct(per_method[causal_idx][col], &baselines));
        }
        table.push_row(row);
        table
    }

    /// Table I: in-distribution evaluation.
    pub fn table1(&self) -> Table {
        self.quality_table("Table I — In-distribution evaluation", false)
    }

    /// Table II: out-of-distribution evaluation.
    pub fn table2(&self) -> Table {
        self.quality_table("Table II — Out-of-distribution evaluation", true)
    }

    /// Fig. 5: stability under distribution-shift ratio α (Detour, first
    /// city).
    pub fn fig5(&self) -> Table {
        let suite = &self.suites[0];
        let mut table = Table::new(
            format!("Fig. 5 — Stability vs shift ratio α ({} & Detour)", suite.city.name),
            &["Method", "alpha", "ROC-AUC", "PR-AUC"],
        );
        for (name, det) in suite.all() {
            if name == "iBOAT" || name == "BetaVAE" || name == "FactorVAE" {
                continue; // the paper's Fig. 5 tracks the Seq2Seq family + CausalTAD
            }
            for step in 0..=5 {
                let alpha = step as f64 / 5.0;
                let normals = mix_normals(
                    &suite.city.data.test_id,
                    &suite.city.data.test_ood,
                    alpha,
                    42 + step as u64,
                );
                let r = evaluate(det, &normals, &suite.city.data.detour);
                table.push_row(vec![
                    name.to_string(),
                    format!("{alpha:.1}"),
                    Table::metric(r.roc_auc),
                    Table::metric(r.pr_auc),
                ]);
            }
        }
        table
    }

    /// Fig. 6: online evaluation — metrics vs observed ratio.
    /// Panel (a): ID & Switch on the first city; panel (b): OOD & Switch on
    /// the last city (matching the paper's xian/chengdu panels).
    pub fn fig6(&self) -> Table {
        let mut table = Table::new(
            "Fig. 6 — Online evaluation (metric vs observed ratio)",
            &["Panel", "Method", "ratio", "ROC-AUC", "PR-AUC"],
        );
        let panels: [(&str, &TrainedSuite, bool); 2] = [
            ("a: ID & Switch", &self.suites[0], false),
            ("b: OOD & Switch", self.suites.last().expect("at least one suite"), true),
        ];
        for (panel, suite, ood) in panels {
            let normals: &[Trajectory] =
                if ood { &suite.city.data.test_ood } else { &suite.city.data.test_id };
            for (name, det) in suite.all() {
                if name == "iBOAT" || name == "BetaVAE" || name == "FactorVAE" {
                    continue; // paper compares the learning-based competitors
                }
                for step in 1..=5 {
                    let ratio = step as f64 / 5.0;
                    let r = evaluate_at_ratio(det, normals, &suite.city.data.switch, ratio);
                    table.push_row(vec![
                        panel.to_string(),
                        name.to_string(),
                        format!("{ratio:.1}"),
                        Table::metric(r.roc_auc),
                        Table::metric(r.pr_auc),
                    ]);
                }
            }
        }
        table
    }

    /// Fig. 7b: mean inference runtime per trajectory vs observed ratio,
    /// including the TG-VAE-only scorer (reusing the trained CausalTAD).
    pub fn fig7b(&self) -> Table {
        let suite = &self.suites[0];
        let mut table = Table::new(
            format!("Fig. 7b — Inference runtime per trajectory ({})", suite.city.name),
            &["Method", "ratio", "mean µs/trajectory"],
        );
        let sample: Vec<&Trajectory> = suite.city.data.test_id.iter().take(100).collect();
        let mut rows: Vec<(&str, &dyn Detector)> = suite.all();
        // TG-VAE scoring path shares the trained CausalTAD model.
        let model = suite.causal.model().expect("trained");
        for (name, det) in rows.drain(..) {
            for step in 1..=5 {
                let ratio = step as f64 / 5.0;
                let started = Instant::now();
                for t in &sample {
                    let n = ((t.len() as f64) * ratio).round().max(1.0) as usize;
                    std::hint::black_box(det.score_prefix(t, n));
                }
                let mean_us = started.elapsed().as_micros() as f64 / sample.len() as f64;
                table.push_row(vec![
                    name.to_string(),
                    format!("{ratio:.1}"),
                    format!("{mean_us:.1}"),
                ]);
            }
        }
        // TG-VAE row: the likelihood-only online path.
        for step in 1..=5 {
            let ratio = step as f64 / 5.0;
            let started = Instant::now();
            for t in &sample {
                let sd = t.sd_pair();
                let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
                let n = ((t.len() as f64) * ratio).round().max(1.0) as usize;
                for &seg in &t.segments[..n.min(t.len())] {
                    scorer.push(seg.0);
                }
                std::hint::black_box(scorer.likelihood_nll());
            }
            let mean_us = started.elapsed().as_micros() as f64 / sample.len() as f64;
            table.push_row(vec![
                "TG-VAE".to_string(),
                format!("{ratio:.1}"),
                format!("{mean_us:.1}"),
            ]);
        }
        table
    }

    /// Fig. 8: λ sweep on all combinations without retraining.
    pub fn fig8(&mut self) -> Table {
        let mut table = Table::new(
            "Fig. 8 — Performance of CausalTAD under different λ",
            &["City", "Combo", "lambda", "ROC-AUC", "PR-AUC"],
        );
        let lambdas = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0];
        for suite_idx in 0..self.suites.len() {
            for &lambda in &lambdas {
                self.suites[suite_idx].causal.set_lambda(lambda);
                let suite = &self.suites[suite_idx];
                for ood in [false, true] {
                    for (anomaly, normals, anomalies) in Self::combos(suite, ood) {
                        let r = evaluate(&suite.causal, normals, anomalies);
                        let combo = format!("{}-{}", if ood { "OOD" } else { "ID" }, anomaly);
                        table.push_row(vec![
                            suite.city.name.clone(),
                            combo,
                            format!("{lambda}"),
                            Table::metric(r.roc_auc),
                            Table::metric(r.pr_auc),
                        ]);
                    }
                }
            }
            // Restore the default λ for later experiments.
            self.suites[suite_idx].causal.set_lambda(0.1);
        }
        table
    }
}

/// Table III: ablation study (trains its own roster — the scoring
/// variants, not the full baseline set).
pub fn table3(opts: &Opts) -> Table {
    let cities = selected_cities(opts);
    let mut columns = vec!["Method".to_string(), "Metric".to_string()];
    for city in &cities {
        for split in ["ID", "OOD"] {
            for anomaly in ["Detour", "Switch"] {
                columns.push(format!("{} {split} {anomaly}", city.name));
            }
        }
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("Table III — Ablation study (TG-VAE / RP-VAE)", &col_refs);

    let mut rows: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new(); // (name, pr, roc)
    for city in &cities {
        let roster = train_ablation_roster(city, opts);
        for (i, det) in roster.iter().enumerate() {
            if rows.len() <= i {
                rows.push((det.name().to_string(), Vec::new(), Vec::new()));
            }
            for ood in [false, true] {
                let normals: &[Trajectory] =
                    if ood { &city.data.test_ood } else { &city.data.test_id };
                for anomalies in [&city.data.detour, &city.data.switch] {
                    let r: ComboResult = evaluate(det, normals, anomalies);
                    rows[i].1.push(r.pr_auc);
                    rows[i].2.push(r.roc_auc);
                }
            }
        }
    }
    for (name, pr, roc) in rows {
        let mut pr_row = vec![name.clone(), "PR-AUC".to_string()];
        pr_row.extend(pr.iter().map(|&x| Table::metric(x)));
        table.push_row(pr_row);
        let mut roc_row = vec![name, "ROC-AUC".to_string()];
        roc_row.extend(roc.iter().map(|&x| Table::metric(x)));
        table.push_row(roc_row);
    }
    table
}

/// Fig. 4: per-segment anomaly scores of a normal trajectory with an
/// unseen SD pair, under VSAE and under CausalTAD (likelihood, scaling,
/// debiased), plus the ground-truth segment popularity for reference.
pub fn fig4(opts: &Opts) -> Table {
    let cities = selected_cities(opts);
    let city = &cities[0];
    let suite = train_full_roster(city, opts);
    let vsae = suite.detector("VSAE").expect("VSAE trained");
    let model = suite.causal.model().expect("trained");
    let lambda = model.config().lambda;

    // The visualised trip: the longest OOD normal trajectory.
    let trip =
        suite.city.data.test_ood.iter().max_by_key(|t| t.len()).expect("OOD split non-empty");

    let mut table = Table::new(
        format!("Fig. 4 — Per-segment scores of a normal OOD trajectory ({})", city.name),
        &[
            "idx",
            "segment",
            "popularity",
            "VSAE marginal score",
            "CausalTAD nll",
            "CausalTAD log-scale",
            "CausalTAD debiased",
        ],
    );

    let sd = trip.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, trip.time_slot);
    for &seg in &trip.segments {
        scorer.push(seg.0);
    }
    let mut vsae_marginals = Vec::with_capacity(trip.len());
    let mut prev_vsae = 0.0f64;
    for (i, step) in scorer.trace().iter().enumerate() {
        // VSAE's marginal per-segment score: prefix-score difference.
        let cur = vsae.score_prefix(trip, i + 1);
        let vsae_marginal = if i == 0 { cur } else { cur - prev_vsae };
        prev_vsae = cur;
        vsae_marginals.push(vsae_marginal);
        table.push_row(vec![
            i.to_string(),
            step.segment.to_string(),
            format!("{:.3}", city.pref.relative_popularity(tad_roadnet::SegmentId(step.segment))),
            format!("{vsae_marginal:.3}"),
            format!("{:.3}", step.nll),
            format!("{:.3}", step.log_scale),
            format!("{:.3}", step.debiased(lambda)),
        ]);
    }

    // The paper's Fig. 4 is a road map coloured by per-segment scores; emit
    // both panels as SVGs when --out is set.
    if let Some(dir) = &opts.out_dir {
        use tad_roadnet::render::{render_svg, Highlight, RenderOptions};
        let normalise = |values: &[f64]| -> Vec<f64> {
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let span = (hi - lo).max(1e-12);
            values.iter().map(|v| (v - lo) / span).collect()
        };
        let causal_values: Vec<f64> = scorer.trace().iter().map(|s| s.debiased(lambda)).collect();
        for (name, values) in [("fig4_vsae", &vsae_marginals), ("fig4_causaltad", &causal_values)] {
            let highlights: Vec<Highlight> = scorer
                .trace()
                .iter()
                .zip(normalise(values))
                .map(|(step, v)| Highlight {
                    segment: tad_roadnet::SegmentId(step.segment),
                    value: v,
                    color: None,
                })
                .collect();
            let svg = render_svg(&suite.city.net, &highlights, &RenderOptions::default());
            let path = dir.join(format!("{name}.svg"));
            if std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, &svg)).is_ok() {
                eprintln!("wrote {path:?}");
            }
        }
    }
    table
}

/// Fig. 7a: training scalability — wall-clock time vs training-set size.
pub fn fig7a(opts: &Opts) -> Table {
    let cities = selected_cities(opts);
    let city = &cities[0];
    let mut table = Table::new(
        format!("Fig. 7a — Training time vs train-set fraction ({})", city.name),
        &["Method", "fraction", "trajectories", "seconds"],
    );
    let c_cfg = causaltad_config(opts.scale, opts.epochs.or(Some(4)));
    let b_cfg = crate::suite::baseline_config(opts.scale, opts.epochs.or(Some(4)));
    for step in 1..=5 {
        let frac = step as f64 / 5.0;
        let n = ((city.data.train.len() as f64) * frac).round() as usize;
        let subset = &city.data.train[..n];

        let mut causal = CausalTadDetector::new(c_cfg.clone());
        let started = Instant::now();
        causal.fit(&city.net, subset);
        table.push_row(vec![
            "CausalTAD".into(),
            format!("{frac:.1}"),
            n.to_string(),
            format!("{:.2}", started.elapsed().as_secs_f64()),
        ]);

        let mut vsae = tad_baselines::Vsae::vsae(b_cfg.clone());
        let started = Instant::now();
        vsae.fit(&city.net, subset);
        table.push_row(vec![
            "VSAE".into(),
            format!("{frac:.1}"),
            n.to_string(),
            format!("{:.2}", started.elapsed().as_secs_f64()),
        ]);

        let mut gmv = tad_baselines::GmVsae::new(b_cfg.clone(), 4);
        let started = Instant::now();
        gmv.fit(&city.net, subset);
        table.push_row(vec![
            "GM-VSAE".into(),
            format!("{frac:.1}"),
            n.to_string(),
            format!("{:.2}", started.elapsed().as_secs_f64()),
        ]);
    }
    table
}

/// Extra design ablations DESIGN.md calls out: road-constrained decoding,
/// SD decoder (posterior collapse), and the §V-E.3 time-factorised scaling
/// extension.
pub fn ablation_design(opts: &Opts) -> Table {
    let cities = selected_cities(opts);
    let city = &cities[0];
    let base = causaltad_config(opts.scale, opts.epochs);
    let variants: Vec<(&str, causaltad::CausalTadConfig)> = vec![
        ("full", base.clone()),
        ("no-road-constraint", {
            let mut c = base.clone();
            c.disable_road_constraint = true;
            c
        }),
        ("no-sd-decoder", {
            let mut c = base.clone();
            c.disable_sd_decoder = true;
            c
        }),
        ("time-factorised-scaling", {
            let mut c = base.clone();
            c.time_factorised_scaling = true;
            c
        }),
        // The reproduction adjustment documented in DESIGN.md §5 reverted
        // to the paper's ambiguous literal reading, plus the tied-embedding
        // variant:
        ("tied-sd-embedding", {
            let mut c = base.clone();
            c.tie_sd_embedding = true;
            c
        }),
        ("score-with-sd-nll", {
            let mut c = base;
            c.score_includes_sd_nll = true;
            c
        }),
    ];
    let mut table = Table::new(
        format!("Design ablations ({})", city.name),
        &["Variant", "ID-Detour ROC", "OOD-Detour ROC", "ID-Switch ROC", "OOD-Switch ROC"],
    );
    for (name, cfg) in variants {
        let mut det = CausalTadDetector::new(cfg);
        eprintln!("training variant {name} ...");
        det.fit(&city.net, &city.data.train);
        let id_d = evaluate(&det, &city.data.test_id, &city.data.detour);
        let ood_d = evaluate(&det, &city.data.test_ood, &city.data.detour);
        let id_s = evaluate(&det, &city.data.test_id, &city.data.switch);
        let ood_s = evaluate(&det, &city.data.test_ood, &city.data.switch);
        table.push_row(vec![
            name.to_string(),
            Table::metric(id_d.roc_auc),
            Table::metric(ood_d.roc_auc),
            Table::metric(id_s.roc_auc),
            Table::metric(ood_s.roc_auc),
        ]);
    }
    table
}

/// Training-time summary table from a study's recorded times.
pub fn training_times(study: &Study) -> Table {
    let mut table = Table::new("Training wall-clock", &["City", "Method", "seconds"]);
    for suite in &study.suites {
        for (name, dur) in &suite.train_times {
            table.push_row(vec![
                suite.city.name.clone(),
                name.clone(),
                format!("{:.2}", dur.as_secs_f64()),
            ]);
        }
    }
    table
}

/// Fleet-scoring throughput (Fig. 7c, systems extension): events/sec of
/// the `tad-serve` engine vs a naive loop that advances each session's
/// `OnlineScorer` one `push` at a time, across concurrent-session counts.
///
/// "fleet x1" runs the engine with a single shard, isolating the gain of
/// micro-batched stepping (matrix-matrix GRU steps + step cache);
/// "fleet xN" adds shard parallelism on top.
pub fn fleet_throughput(opts: &Opts) -> Table {
    use tad_serve::FleetConfig;

    let cities = selected_cities(opts);
    let city = &cities[0];
    let cfg = causaltad_config(opts.scale, opts.epochs.or(Some(2)));
    let mut model = causaltad::CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = std::sync::Arc::new(model);
    let shards = FleetConfig::default().num_shards;

    let mut table = Table::new(
        format!("Fig. 7c — Fleet scoring throughput ({})", city.name),
        &[
            "sessions",
            "events",
            "naive events/s",
            "fleet x1 events/s",
            &format!("fleet x{shards} events/s"),
            "speedup x1",
            &format!("speedup x{shards}"),
        ],
    );

    for &sessions in &[64usize, 512, 4096] {
        let walks = fleet_walks(&model, sessions, 24, 9);
        let events: usize = walks.iter().map(|w| w.len()).sum();

        let naive_eps = events as f64 / time_naive_fleet(&model, &walks);
        let one_eps = events as f64 / time_engine_fleet(&model, &walks, 1);
        let many_eps = events as f64 / time_engine_fleet(&model, &walks, shards);

        table.push_row(vec![
            sessions.to_string(),
            events.to_string(),
            format!("{naive_eps:.0}"),
            format!("{one_eps:.0}"),
            format!("{many_eps:.0}"),
            format!("{:.2}x", one_eps / naive_eps),
            format!("{:.2}x", many_eps / naive_eps),
        ]);
    }
    table
}

/// Valid successor-following walks for `sessions` concurrent trips.
pub fn fleet_walks(
    model: &causaltad::CausalTad,
    sessions: usize,
    len: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..sessions)
        .map(|i| {
            let mut walk = vec![(i % model.vocab()) as u32];
            while walk.len() < len {
                let succ = model.successors_of(*walk.last().expect("non-empty"));
                if succ.is_empty() {
                    break;
                }
                walk.push(succ[rng.gen_range(0..succ.len())]);
            }
            walk
        })
        .collect()
}

/// Seconds to replay every walk through per-session `OnlineScorer::push`
/// loops (the pre-`tad-serve` serving strategy), interleaved round-robin
/// like real fleet telemetry.
pub fn time_naive_fleet(model: &causaltad::CausalTad, walks: &[Vec<u32>]) -> f64 {
    let started = Instant::now();
    let mut scorers: Vec<_> =
        walks.iter().map(|w| model.online(w[0], *w.last().expect("non-empty"), 0)).collect();
    let longest = walks.iter().map(Vec::len).max().unwrap_or(0);
    for step in 0..longest {
        for (scorer, walk) in scorers.iter_mut().zip(walks) {
            if let Some(&seg) = walk.get(step) {
                scorer.push(seg);
            }
        }
    }
    started.elapsed().as_secs_f64()
}

/// Seconds for the `tad-serve` engine to ingest and score the same
/// interleaved stream and drain (including channel + thread overhead).
/// Events are fed from several producer threads, as gateway frontends
/// would; each producer owns a disjoint slice of the fleet so per-trip
/// order is preserved.
pub fn time_engine_fleet(
    model: &std::sync::Arc<causaltad::CausalTad>,
    walks: &[Vec<u32>],
    shards: usize,
) -> f64 {
    use tad_serve::{Event, FleetConfig, FleetEngine};
    const PRODUCERS: usize = 4;
    let started = Instant::now();
    let engine = FleetEngine::builder(std::sync::Arc::clone(model))
        .config(FleetConfig {
            num_shards: shards,
            queue_capacity: 8192,
            max_sessions_per_shard: walks.len().max(16),
            ..FleetConfig::default()
        })
        .build()
        .expect("trained model");
    let chunk = walks.len().div_ceil(PRODUCERS);
    std::thread::scope(|scope| {
        for (p, slice) in walks.chunks(chunk).enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let base = (p * chunk) as u64;
                let mut buf: Vec<Event> = Vec::with_capacity(2048);
                let flush = |buf: &mut Vec<Event>, force: bool| {
                    if buf.len() >= 1024 || (force && !buf.is_empty()) {
                        engine.submit_all(buf.drain(..)).expect("engine live");
                    }
                };
                for (i, walk) in slice.iter().enumerate() {
                    buf.push(Event::TripStart {
                        id: base + i as u64,
                        source: walk[0],
                        dest: *walk.last().expect("non-empty"),
                        time_slot: 0,
                    });
                }
                flush(&mut buf, true);
                let longest = slice.iter().map(Vec::len).max().unwrap_or(0);
                for step in 0..longest {
                    for (i, walk) in slice.iter().enumerate() {
                        if let Some(&seg) = walk.get(step) {
                            buf.push(Event::Segment { id: base + i as u64, seg });
                            flush(&mut buf, false);
                        }
                    }
                }
                for i in 0..slice.len() {
                    buf.push(Event::TripEnd { id: base + i as u64 });
                }
                flush(&mut buf, true);
            });
        }
    });
    engine.shutdown();
    started.elapsed().as_secs_f64()
}

/// Hostile-stream AUC grid: corruption channels × sanitization policies.
///
/// Every cell corrupts the test sets with a seeded fault model and scores
/// them through a [`tad_serve::FleetEngine`] carrying the cell's
/// [`tad_serve::StreamPolicy`] — the full admission path a production
/// gateway runs, not the offline `Detector::score` shortcut. Reported per
/// city on the ID normals vs Detour anomalies split:
///
/// * rows — clean stream, duplicates (30%), adjacent reorders (30%),
///   drops (15%), and a mixed channel with all five faults on;
/// * columns — ROC-AUC with the policy off, with sanitization on
///   (dedup window 2, reorder window 3, gaps scored through), and with
///   sanitization plus `GapPolicy::Reset`; each with its delta against
///   the city's clean × off baseline.
pub fn hostile_streams(opts: &Opts) -> Table {
    use tad_eval::hostile::hostile_cell;
    use tad_serve::{GapPolicy, StreamPolicy};
    use tad_trajsim::CorruptionConfig;

    let corruptions = [
        ("clean", CorruptionConfig::default()),
        ("duplicates 30%", CorruptionConfig::duplicates(0.30, 11)),
        ("reorders 30%", CorruptionConfig::reorders(0.30, 12)),
        ("drops 15%", CorruptionConfig::drops(0.15, 13)),
        (
            "mixed",
            CorruptionConfig {
                duplicate_prob: 0.15,
                reorder_prob: 0.15,
                drop_prob: 0.08,
                jitter_prob: 0.05,
                teleport_prob: 0.02,
                seed: 14,
            },
        ),
    ];
    let policies = [
        ("off", StreamPolicy::default()),
        (
            "sanitize",
            StreamPolicy { dedup_window: 2, reorder_window: 3, gap: GapPolicy::ScoreThrough },
        ),
        (
            "sanitize+reset",
            StreamPolicy { dedup_window: 2, reorder_window: 3, gap: GapPolicy::Reset },
        ),
    ];

    let mut columns: Vec<String> = vec!["City".into(), "Corruption".into()];
    for (name, _) in &policies {
        columns.push(format!("{name} ROC-AUC"));
        columns.push(format!("{name} Δ"));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Hostile streams — ROC-AUC under corruption × policy (ID normals vs Detour)",
        &column_refs,
    );

    for city in &selected_cities(opts) {
        let cfg = causaltad_config(opts.scale, opts.epochs);
        let mut model = causaltad::CausalTad::new(&city.net, cfg);
        eprintln!("training CausalTAD on {} ...", city.name);
        model.fit(&city.data.train);
        let model = std::sync::Arc::new(model);
        let normals = &city.data.test_id;
        let anomalies = &city.data.detour;

        let mut baseline = None;
        for (corruption_name, corruption) in &corruptions {
            let mut row = vec![city.name.clone(), corruption_name.to_string()];
            for (policy_name, policy) in &policies {
                eprintln!("  cell {corruption_name} × {policy_name} ...");
                let r = hostile_cell(&model, &city.net, policy, corruption, normals, anomalies);
                let base = *baseline.get_or_insert(r.roc_auc);
                row.push(Table::metric(r.roc_auc));
                row.push(format!("{:+.4}", r.roc_auc - base));
            }
            table.push_row(row);
        }
    }
    table
}

/// Prints a table to stdout and writes its CSV artefact.
pub fn emit(opts: &Opts, name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    opts.write_csv(name, &table.to_csv());
}
