//! The full raw-GPS pipeline (paper Definitions 1 & 2): noisy GPS points →
//! HMM/Viterbi map matching → segment walk → online anomaly scoring.
//!
//! ```sh
//! cargo run --release --example map_matching
//! ```

use causaltad::{CausalTad, CausalTadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tad_roadnet::index::SegmentIndex;
use tad_roadnet::matching::{match_trajectory, synthesize_gps, MatchConfig};
use tad_trajsim::{generate_city, CityConfig, Label, Trajectory};

fn main() {
    let city = generate_city(&CityConfig::test_scale(55));
    let cfg = CausalTadConfig { epochs: 6, ..Default::default() };
    let mut model = CausalTad::new(&city.net, cfg);
    println!("training CausalTAD ...");
    model.fit(&city.data.train);

    // Spatial index for candidate lookup (cell size ~ block length).
    let index = SegmentIndex::build(&city.net, 200.0);
    let match_cfg = MatchConfig::default();
    let mut rng = StdRng::seed_from_u64(99);

    for (label, trip) in [("normal", &city.data.test_id[0]), ("detour", &city.data.detour[0])] {
        // 1. A vehicle drives the route; we observe noisy GPS pings.
        let gps = synthesize_gps(&city.net, &trip.segments, 40.0, 12.0, &mut rng);
        println!("\n--- {label} trip: {} true segments, {} GPS points ---", trip.len(), gps.len());

        // 2. Map-match the pings back onto the road network.
        let matched = match_trajectory(&city.net, &index, &gps, &match_cfg)
            .expect("matching should succeed on synthetic pings");
        let true_set: std::collections::HashSet<_> = trip.segments.iter().collect();
        let overlap = matched.iter().filter(|s| true_set.contains(s)).count();
        println!(
            "  matched {} segments, {:.0}% overlapping the true route",
            matched.len(),
            overlap as f64 / matched.len() as f64 * 100.0
        );

        // 3. Score the *matched* walk, as a production pipeline would.
        let matched_trip =
            Trajectory { segments: matched, time_slot: trip.time_slot, label: Label::Normal };
        let score_matched = model.score(&matched_trip);
        let score_true = model.score(trip);
        println!(
            "  score(matched walk) = {score_matched:8.2}   score(true route) = {score_true:8.2}"
        );
    }

    println!("\nGPS noise barely moves the score: matching recovers the walk,");
    println!("so detection quality survives the raw-GPS path.");
}
