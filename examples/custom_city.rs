//! The paper's Fig. 1 worked end-to-end on a hand-built road network.
//!
//! A mall sits at p5, so training trips all head there, preferring the wide
//! road p2→p3 over the narrow p2→p4. At inference a trip heads for the new
//! destination p7, whose sensible route is p2→p4→p6→p7. A conditional
//! model (λ = 0) over-penalises the unpopular p2→p4 turn; CausalTAD's
//! per-segment scaling factor compensates exactly there.
//!
//! ```sh
//! cargo run --release --example custom_city
//! ```

use causaltad::{CausalTad, CausalTadConfig};
use tad_roadnet::geometry::Point;
use tad_roadnet::{NodeId, RoadClass, RoadNetwork, SegmentId};
use tad_trajsim::Trajectory;

/// Builds the Fig. 1 layout; returns the network and the named nodes.
fn fig1_network() -> (RoadNetwork, Vec<NodeId>) {
    let mut net = RoadNetwork::new();
    // Index:        0=m     1=p1    2=p2    3=p3    4=p4    5=p5    6=p6    7=p7
    let coords = [
        (-1.0, 1.0),
        (0.0, 2.0),
        (0.0, 1.0),
        (1.0, 1.0),
        (0.0, 0.0),
        (1.0, 0.0),
        (0.0, -1.0),
        (1.0, -1.0),
    ];
    let nodes: Vec<NodeId> =
        coords.iter().map(|&(x, y)| net.add_node(Point::new(x * 300.0, y * 300.0))).collect();
    let mut link = |a: usize, b: usize, class: RoadClass| {
        let len = 300.0;
        net.add_segment(nodes[a], nodes[b], len, class);
        net.add_segment(nodes[b], nodes[a], len, class);
    };
    link(0, 2, RoadClass::Major); // the main road into p2
    link(2, 1, RoadClass::Local); // p2 - p1 (leads away)
    link(2, 3, RoadClass::Major); // p2 - p3 (wide)
    link(2, 4, RoadClass::Local); // p2 - p4 (narrow)
    link(3, 5, RoadClass::Major); // p3 - p5 (wide, to the mall)
    link(4, 5, RoadClass::Local); // p4 - p5 (narrow)
    link(4, 6, RoadClass::Local); // p4 - p6
    link(6, 7, RoadClass::Local); // p6 - p7
    link(5, 7, RoadClass::Local); // p5 - p7 (very narrow)
    (net, nodes)
}

/// A trajectory along a node path.
fn walk(net: &RoadNetwork, nodes: &[NodeId], path: &[usize]) -> Trajectory {
    let segments: Vec<SegmentId> = path
        .windows(2)
        .map(|w| net.segment_between(nodes[w[0]], nodes[w[1]]).expect("edge exists"))
        .collect();
    Trajectory::normal(segments, 0)
}

fn main() {
    let (net, nodes) = fig1_network();

    // Training data (E -> C): the mall at p5 dominates destinations, and
    // drivers prefer the wide p2->p3->p5 (E -> T): 16 trips via p3, 4 via p4.
    let mut train = Vec::new();
    for _ in 0..16 {
        train.push(walk(&net, &nodes, &[0, 2, 3, 5]));
    }
    for _ in 0..4 {
        train.push(walk(&net, &nodes, &[0, 2, 4, 5]));
    }

    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 60;
    cfg.lambda = 0.1;
    let mut model = CausalTad::new(&net, cfg);
    println!("training on {} trips to the mall (p5) ...", train.len());
    model.fit(&train);

    // The paper's inference scenario: a normal trip to the NEW destination
    // p7 via p2 -> p4 -> p6 -> p7 (all narrow, unpopular roads).
    let new_trip = walk(&net, &nodes, &[0, 2, 4, 6, 7]);
    // The dominant trained route, as the in-distribution reference.
    let trained_trip = walk(&net, &nodes, &[0, 2, 3, 5]);

    let table = model.scaling().expect("fitted");
    let p2p3 = net.segment_between(nodes[2], nodes[3]).unwrap();
    let p2p4 = net.segment_between(nodes[2], nodes[4]).unwrap();
    println!("\nprecomputed log-scaling factors (higher = more compensation):");
    println!("  popular   p2->p3: {:6.3}", table.log_scale(p2p3.0, 0));
    println!("  unpopular p2->p4: {:6.3}", table.log_scale(p2p4.0, 0));
    assert!(table.log_scale(p2p4.0, 0) > table.log_scale(p2p3.0, 0));

    // Per-segment trace of the new-destination trip (the paper's Fig. 4):
    // unpopular segments are exactly where the compensation lands.
    println!("\nper-segment trace of the trip to p7 (lambda = 0.1):");
    let sd = new_trip.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, 0);
    for &seg in &new_trip.segments {
        scorer.push(seg.0);
    }
    println!("  {:>4} {:>9} {:>10} {:>9}", "seg", "raw nll", "log-scale", "debiased");
    for step in scorer.trace() {
        println!(
            "  {:>4} {:>9.3} {:>10.3} {:>9.3}",
            step.segment,
            step.nll,
            step.log_scale,
            step.debiased(0.1)
        );
    }

    // Debiasing pulls the normal-but-unpopular route towards the trained
    // route's score level (relative gap shrinks), which is how the OOD
    // false alarms of the conditional model disappear.
    let per_seg = |t: &Trajectory, lambda: f64, m: &mut CausalTad| {
        m.set_lambda(lambda);
        m.score(t) / t.len() as f64
    };
    let biased_new = per_seg(&new_trip, 0.0, &mut model);
    let biased_ref = per_seg(&trained_trip, 0.0, &mut model);
    let debiased_new = per_seg(&new_trip, 0.1, &mut model);
    let debiased_ref = per_seg(&trained_trip, 0.1, &mut model);
    let gap_biased = biased_new - biased_ref;
    let gap_debiased = debiased_new - debiased_ref;
    println!("\nper-segment scores (higher = more anomalous):");
    println!("  trained route to p5:  biased {biased_ref:6.3}   debiased {debiased_ref:6.3}");
    println!("  new route to p7:      biased {biased_new:6.3}   debiased {debiased_new:6.3}");
    println!(
        "\nexcess score of the normal new-destination trip over the trained route\n\
         (per segment; this excess is what turns into OOD false alarms):\n  \
         biased   (P(T|C)):     {gap_biased:6.3}\n  \
         debiased (P(T|do(C))): {gap_debiased:6.3}  <- smaller",
    );
    assert!(
        gap_debiased < gap_biased,
        "debiasing must compensate unpopular roads more than popular ones"
    );
}
