//! Fleet scoring: thousands of concurrent trips streaming through the
//! `tad-serve` engine.
//!
//! Trains a quick CausalTAD model, then replays a fleet of normal and
//! detour trips as one interleaved event stream — exactly how ride-hailing
//! telemetry arrives — and lets the engine batch their per-segment model
//! steps. Finished trips are delivered to a completion callback; the
//! demo flags the highest-scoring ones and prints the fleet counters.
//!
//! Run with: `cargo run --release --example fleet_streaming`

use std::sync::{mpsc, Arc};

use causaltad::{CausalTad, CausalTadConfig};
use causaltad_suite::serve::{Event, FleetConfig, FleetEngine, TripOutcome};
use causaltad_suite::trajsim::{generate_city, CityConfig, Label, Trajectory};

fn main() {
    // --- Train a quick model --------------------------------------------
    let city = generate_city(&CityConfig::test_scale(4242));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 3;
    println!("training on {} trajectories ...", city.data.train.len());
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = Arc::new(model);

    // --- The fleet: normal trips with some detours mixed in -------------
    let fleet: Vec<&Trajectory> =
        city.data.test_id.iter().take(160).chain(city.data.detour.iter().take(40)).collect();

    // --- Start the engine ------------------------------------------------
    let (tx, rx) = mpsc::channel::<TripOutcome>();
    let engine = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { max_batch: 256, ..FleetConfig::default() })
        .on_complete(move |outcome| {
            let _ = tx.send(outcome);
        })
        .build()
        .expect("model is trained");
    println!("engine up: {} shards", engine.num_shards());

    // --- Replay the fleet as one interleaved stream ----------------------
    for (id, trip) in fleet.iter().enumerate() {
        let sd = trip.sd_pair();
        engine
            .submit(Event::TripStart {
                id: id as u64,
                source: sd.source.0,
                dest: sd.dest.0,
                time_slot: trip.time_slot,
            })
            .expect("engine is live");
    }
    let longest = fleet.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, trip) in fleet.iter().enumerate() {
            if let Some(seg) = trip.segments.get(step) {
                engine.submit(Event::Segment { id: id as u64, seg: seg.0 }).expect("live");
            }
            if step + 1 == trip.len() {
                engine.submit(Event::TripEnd { id: id as u64 }).expect("live");
            }
        }
    }
    let stats = engine.shutdown();

    // --- Rank the finished trips by anomaly score ------------------------
    let mut outcomes: Vec<TripOutcome> = rx.iter().collect();
    outcomes.sort_by(|a, b| b.score.total_cmp(&a.score));
    println!("\ntop 10 most anomalous trips:");
    println!("{:>6} {:>10} {:>8}   label", "trip", "score", "segs");
    for outcome in outcomes.iter().take(10) {
        let label = match fleet[outcome.id as usize].label {
            Label::Normal => "normal",
            _ => "DETOUR",
        };
        println!("{:>6} {:>10.2} {:>8}   {label}", outcome.id, outcome.score, outcome.segments);
    }
    let flagged_detours =
        outcomes.iter().take(40).filter(|o| fleet[o.id as usize].label != Label::Normal).count();
    println!("\ndetours among the top-40 scores: {flagged_detours}/40");

    println!(
        "\nfleet stats: {} events ({:.0} ev/s), {} segments in {} batches \
         (mean batch {:.1}), {} trips completed, {} rejected, {} off-graph",
        stats.events_ingested,
        stats.events_per_sec,
        stats.segments_scored,
        stats.batches,
        stats.mean_batch_size,
        stats.trips_completed,
        stats.rejected,
        stats.off_graph_hits,
    );
}
