//! The paper's headline claim in one run: on trajectories with *unseen*
//! SD pairs, a conditional model (VSAE) degrades sharply, while CausalTAD's
//! causal debiasing (Eq. 10) keeps detection usable. The debiasing term can
//! be switched off (λ = 0) to watch the gap close.
//!
//! ```sh
//! cargo run --release --example ood_generalization
//! ```

use causaltad::CausalTadConfig;
use tad_baselines::{BaselineConfig, Detector, Vsae};
use tad_eval::harness::evaluate;
use tad_eval::wrappers::CausalTadDetector;
use tad_trajsim::{generate_city, CityConfig};

fn main() {
    let mut city_cfg = CityConfig::test_scale(33);
    city_cfg.num_candidate_pairs = 16;
    city_cfg.trajs_per_pair = 12;
    city_cfg.num_ood_pairs = 16;
    city_cfg.trajs_per_ood_pair = 3;
    let city = generate_city(&city_cfg);
    println!("city: {} segments | {}", city.net.num_segments(), city.data.summary());

    let mut vsae = Vsae::vsae(BaselineConfig { epochs: 10, ..Default::default() });
    println!("training VSAE ...");
    vsae.fit(&city.net, &city.data.train);

    let mut causal = CausalTadDetector::new(CausalTadConfig { epochs: 10, ..Default::default() });
    println!("training CausalTAD ...");
    causal.fit(&city.net, &city.data.train);

    println!("\n{:<22} {:>12} {:>12} {:>10}", "detector", "ID ROC-AUC", "OOD ROC-AUC", "drop");
    let report = |name: &str, det: &dyn Detector| {
        let id = evaluate(det, &city.data.test_id, &city.data.detour);
        let ood = evaluate(det, &city.data.test_ood, &city.data.detour);
        println!(
            "{name:<22} {:>12.4} {:>12.4} {:>9.1}%",
            id.roc_auc,
            ood.roc_auc,
            (id.roc_auc - ood.roc_auc) / id.roc_auc * 100.0
        );
    };
    report("VSAE (P(T|C))", &vsae);
    report("CausalTAD (P(T|do(C)))", &causal);

    // Ablate the debiasing: λ = 0 degrades CausalTAD towards VSAE-like
    // behaviour on OOD data (paper Fig. 8, observation 1).
    causal.set_lambda(0.0);
    report("CausalTAD (lambda = 0)", &causal);
    causal.set_lambda(0.1);

    println!(
        "\nThe OOD drop is the confounding bias of road preference; CausalTAD's\n\
         per-segment scaling factors compensate for it (paper §V-E.1)."
    );
}
