//! Online detection: stream a trip segment by segment and watch the
//! debiased anomaly score evolve — each update is O(1) (paper §V-D).
//!
//! ```sh
//! cargo run --release --example online_detection
//! ```

use causaltad::{CausalTad, CausalTadConfig};
use tad_trajsim::{generate_city, CityConfig, Trajectory};

fn stream(model: &CausalTad, trip: &Trajectory, label: &str, alarm: f64) {
    let sd = trip.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, trip.time_slot);
    println!(
        "\n--- streaming {label} ({} segments, SD {:?} -> {:?}) ---",
        trip.len(),
        sd.source,
        sd.dest
    );
    let mut alarmed = false;
    for (i, &seg) in trip.segments.iter().enumerate() {
        let score = scorer.push(seg.0);
        let step = scorer.trace().last().expect("pushed");
        let mark = if !alarmed && score > alarm {
            alarmed = true;
            "  <-- ALARM"
        } else {
            ""
        };
        if i % 3 == 0 || mark.starts_with("  <--") {
            println!(
                "  t={i:>3}  seg {:>4}  step-nll {:6.3}  log-scale {:6.3}  score {:8.2}{mark}",
                step.segment, step.nll, step.log_scale, score
            );
        }
    }
    println!("  final score: {:.2} (alarm threshold {alarm:.0})", scorer.score());
}

fn main() {
    let city = generate_city(&CityConfig::test_scale(21));
    let cfg = CausalTadConfig { epochs: 8, ..Default::default() };
    let mut model = CausalTad::new(&city.net, cfg);
    println!("training on {} trajectories ...", city.data.train.len());
    model.fit(&city.data.train);

    // Calibrate a simple alarm threshold on the training scores:
    // mean + 3 * std of normal trip scores.
    let train_scores: Vec<f64> = city.data.train.iter().map(|t| model.score(t)).collect();
    let mean = train_scores.iter().sum::<f64>() / train_scores.len() as f64;
    let std = (train_scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
        / train_scores.len() as f64)
        .sqrt();
    let alarm = mean + 3.0 * std;
    println!("alarm threshold = mean + 3 std = {alarm:.2}");

    stream(&model, &city.data.test_id[0], "a NORMAL trip", alarm);
    stream(&model, &city.data.detour[0], "a DETOUR anomaly", alarm);
    stream(&model, &city.data.switch[0], "a SWITCH anomaly", alarm);
}
