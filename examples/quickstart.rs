//! Quickstart: generate a synthetic city, train CausalTAD, and score
//! normal vs anomalous trajectories.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use causaltad::{CausalTad, CausalTadConfig};
use tad_eval::metrics::{pr_auc, roc_auc};
use tad_trajsim::{generate_city, CityConfig};

fn main() {
    // 1. A small confounded city: popular SD pairs, preference-driven
    //    routes, and generated Detour/Switch anomalies.
    println!("generating city ...");
    let city = generate_city(&CityConfig::test_scale(7));
    println!(
        "  road network: {} segments | data: {}",
        city.net.num_segments(),
        city.data.summary()
    );

    // 2. Train CausalTAD (TG-VAE + RP-VAE, jointly; Eq. 9 of the paper).
    let cfg = CausalTadConfig { epochs: 8, ..Default::default() };
    let mut model = CausalTad::new(&city.net, cfg);
    println!("training CausalTAD for {} epochs ...", model.config().epochs);
    let report = model.fit(&city.data.train);
    println!(
        "  loss {:.2} -> {:.2} in {:.1?}",
        report.epoch_losses.first().unwrap_or(&f64::NAN),
        report.final_loss(),
        report.wall_time
    );

    // 3. Score trajectories: higher = more anomalous (Eq. 10).
    let normal = &city.data.test_id[0];
    let detour = &city.data.detour[0];
    println!("\nscore(normal trip, {} segments)  = {:8.2}", normal.len(), model.score(normal));
    println!("score(detour trip, {} segments)  = {:8.2}", detour.len(), model.score(detour));

    // 4. Detection quality over the whole in-distribution test set.
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in &city.data.test_id {
        scores.push(model.score(t));
        labels.push(false);
    }
    for t in &city.data.detour {
        scores.push(model.score(t));
        labels.push(true);
    }
    println!(
        "\nID & Detour:  ROC-AUC {:.4}  PR-AUC {:.4}",
        roc_auc(&scores, &labels),
        pr_auc(&scores, &labels)
    );
}
