//! Cluster fleet scoring: a `tad-router` tier hash-partitioning trips
//! across two independent `tad-net` backend servers, then an N→M warm
//! restart of the whole cluster.
//!
//! The demo trains a quick CausalTAD model, starts two backend servers
//! and a router in front of them (all over loopback — in production each
//! backend is its own process or host), and streams a fleet of trips
//! through the router from several producers. Producers use the plain
//! `tad_net::Client`: the router is wire-compatible with a single server.
//! Some trips are left open-ended, a **merged** fleet snapshot is
//! captured through the router, the whole tier is shut down ("crash"),
//! and the capture is re-partitioned with `split_image` onto **three**
//! fresh backends — after which the open trips finish streaming through a
//! new router with zero score discontinuity.
//!
//! Run with: `cargo run --release --example cluster_fleet`

use std::sync::Arc;

use causaltad::{CausalTad, CausalTadConfig};
use causaltad_suite::net::{Client, NetServer, Response};
use causaltad_suite::router::{split_image, RouterServer};
use causaltad_suite::serve::image_from_bytes;
use causaltad_suite::trajsim::{generate_city, CityConfig, Trajectory};

const PRODUCERS: usize = 2;
const TRIPS: usize = 60;

/// Starts `n` backend servers and a router over all of them.
fn spawn_tier(
    model: &Arc<CausalTad>,
    seeds: Vec<causaltad_suite::serve::FleetImage>,
) -> (Vec<NetServer>, RouterServer) {
    let backends: Vec<NetServer> = seeds
        .into_iter()
        .map(|seed| {
            let mut builder = NetServer::builder(Arc::clone(model));
            if !seed.sessions.is_empty() {
                builder = builder.resume(seed);
            }
            builder.bind("127.0.0.1:0").expect("bind backend")
        })
        .collect();
    let router = RouterServer::builder()
        .backends(backends.iter().map(|b| b.local_addr()))
        .bind("127.0.0.1:0")
        .expect("bind router");
    (backends, router)
}

fn main() {
    // --- Train a quick model --------------------------------------------
    let city = generate_city(&CityConfig::test_scale(1717));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 2;
    println!("training on {} trajectories ...", city.data.train.len());
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = Arc::new(model);

    let fleet: Vec<Trajectory> = city.data.test_id.iter().take(TRIPS).cloned().collect();

    // --- Phase A: 2 backends behind a router ------------------------------
    let (backends_a, router_a) = spawn_tier(&model, vec![Default::default(), Default::default()]);
    let addr = router_a.local_addr();
    println!(
        "cluster up: router on {addr} over {} backends ({})",
        router_a.num_backends(),
        backends_a.iter().map(|b| b.local_addr().to_string()).collect::<Vec<_>>().join(", ")
    );

    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let slice: Vec<(u64, Trajectory)> = fleet
            .iter()
            .enumerate()
            .filter(|(i, _)| i % PRODUCERS == producer)
            .map(|(i, t)| (i as u64, t.clone()))
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect to router");
            for (id, trip) in &slice {
                let sd = trip.sd_pair();
                client.trip_start(*id, sd.source.0, sd.dest.0, trip.time_slot).expect("write");
            }
            let longest = slice.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
            for step in 0..longest {
                for (id, trip) in &slice {
                    if let Some(seg) = trip.segments.get(step) {
                        client.segment(*id, seg.0).expect("write");
                    }
                    // Leave every third trip open-ended: those sessions
                    // survive the snapshot and finish after the restart.
                    if step + 1 == trip.len() && id % 3 != 0 {
                        client.trip_end(*id).expect("write");
                    }
                }
            }
            // Fleet-wide barrier: the aggregated stats cover all backends.
            let stats = client.flush().expect("fleet-wide flush barrier");
            let mut scores = 0usize;
            while let Some(resp) = client.try_recv() {
                match resp {
                    Response::Score(_) => scores += 1,
                    Response::TripComplete(_) => {}
                    Response::Error { code, trip, .. } => {
                        eprintln!("producer {producer}: error {code} (trip {trip:?})")
                    }
                    _ => {}
                }
            }
            println!(
                "producer {producer}: {} trips streamed, {scores} scores back \
                 (fleet-wide: {} segments scored in {} micro-batches)",
                slice.len(),
                stats.segments_scored,
                stats.batches,
            );
            scores
        }));
    }
    let phase_a_scores: usize = handles.into_iter().map(|h| h.join().expect("producer")).sum();

    // --- Fleet latency summary, pulled over the wire ----------------------
    // One `MetricsRequest` against the router merges every backend's
    // histogram registry with the router's own into a single fleet view.
    let mut admin = Client::connect(addr).expect("connect");
    let fleet_metrics = admin.metrics().expect("fleet metrics through the router");
    println!("\nfleet latency summary (over the wire, all backends merged):");
    for (name, label) in [
        ("serve.score_latency_ns", "segment scoring"),
        ("net.frame_decode_ns", "frame decode"),
        ("router.forward_ns", "router forward"),
    ] {
        if let Some(h) = fleet_metrics.histogram(name) {
            println!(
                "  {label:16} p50 {:>8} ns   p99 {:>8} ns   p999 {:>8} ns   ({} samples)",
                h.p50(),
                h.p99(),
                h.p999(),
                h.count
            );
        }
    }
    if let Some(width) = fleet_metrics.histogram("serve.batch_width") {
        println!(
            "  micro-batch width: p50 {}  p99 {}  mean {:.1}",
            width.p50(),
            width.p99(),
            width.mean()
        );
    }

    // --- Merged snapshot over the wire, then kill the whole tier ----------
    let blob = admin.snapshot().expect("merged snapshot through the router");
    let image = image_from_bytes(blob).expect("merged image decodes");
    println!(
        "\nmerged snapshot: {} live sessions captured across {} backends",
        image.sessions.len(),
        router_a.num_backends()
    );
    drop(admin);
    router_a.shutdown();
    let completed_a: u64 = backends_a.into_iter().map(|b| b.shutdown().trips_completed).sum();
    println!("tier down (the \"crash\"); {completed_a} trips had completed before it");

    // --- Phase B: restore N=2 capture onto M=3 backends -------------------
    let captured = image.sessions.len();
    let seeds = split_image(image, 3);
    println!(
        "re-partitioned for 3 backends: {:?} sessions per backend",
        seeds.iter().map(|s| s.sessions.len()).collect::<Vec<_>>()
    );
    let (backends_b, router_b) = spawn_tier(&model, seeds);
    let addr = router_b.local_addr();
    let mut client = Client::connect(addr).expect("connect to restored router");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.sessions_restored, captured as u64);
    println!(
        "restored cluster up on {addr}: {} sessions resumed across {} backends",
        stats.sessions_restored,
        router_b.num_backends()
    );

    // Finish the open-ended trips: no TripStart needed — the sessions were
    // restored, and the router re-attaches them to this connection.
    let mut finished = 0usize;
    for (id, _) in fleet.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
        client.trip_end(id as u64).expect("write");
        finished += 1;
    }
    let stats = client.flush().expect("barrier");
    let mut finals = 0usize;
    while let Some(resp) = client.try_recv() {
        if let Response::TripComplete(tc) = resp {
            assert_eq!(tc.id % 3, 0);
            finals += 1;
        }
    }
    println!(
        "finished {finished} carried-over trips after the N→M restart \
         ({finals} completions delivered; {} trips completed fleet-wide)",
        stats.trips_completed
    );
    println!(
        "phase A streamed {phase_a_scores} per-segment scores; \
         scoring resumed bit-identically from the merged capture"
    );

    router_b.shutdown();
    for backend in backends_b {
        backend.shutdown();
    }
}
