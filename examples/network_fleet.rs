//! Network fleet scoring: producers streaming trips over TCP into a
//! `tad-net` server, consuming per-segment anomaly scores as they unfold.
//!
//! Trains a quick CausalTAD model, binds a `NetServer` on loopback, and
//! spawns several producer threads, each owning a slice of the fleet.
//! Every producer streams its trips' segments over its own connection
//! (interleaved, like real telemetry), receives `Score` frames pushed
//! back per segment, and collects `TripComplete` frames at the end of
//! each trip. The demo then takes a fleet snapshot **over the wire**,
//! restores it into a second server, and shows the byte counts involved
//! in a remote warm restart.
//!
//! Run with: `cargo run --release --example network_fleet`

use std::sync::Arc;

use causaltad::{CausalTad, CausalTadConfig};
use causaltad_suite::net::{Client, NetServer, Response};
use causaltad_suite::serve::image_from_bytes;
use causaltad_suite::trajsim::{generate_city, CityConfig, Label, Trajectory};

const PRODUCERS: usize = 4;
const TRIPS_PER_PRODUCER: usize = 40;

fn main() {
    // --- Train a quick model --------------------------------------------
    let city = generate_city(&CityConfig::test_scale(4242));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 3;
    println!("training on {} trajectories ...", city.data.train.len());
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = Arc::new(model);

    // --- The fleet, sliced across producers ------------------------------
    let fleet: Vec<Trajectory> = city
        .data
        .test_id
        .iter()
        .take(PRODUCERS * TRIPS_PER_PRODUCER - 30)
        .chain(city.data.detour.iter().take(30))
        .cloned()
        .collect();

    // --- Bind the server on loopback -------------------------------------
    let server = NetServer::builder(Arc::clone(&model)).bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("tad-net server listening on {addr}");

    // --- Producers: one connection each, pipelined writes -----------------
    let mut handles = Vec::new();
    for producer in 0..PRODUCERS {
        let slice: Vec<(u64, Trajectory)> = fleet
            .iter()
            .enumerate()
            .filter(|(i, _)| i % PRODUCERS == producer)
            .map(|(i, t)| (i as u64, t.clone()))
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for (id, trip) in &slice {
                let sd = trip.sd_pair();
                client.trip_start(*id, sd.source.0, sd.dest.0, trip.time_slot).expect("write");
            }
            let longest = slice.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
            for step in 0..longest {
                for (id, trip) in &slice {
                    if let Some(seg) = trip.segments.get(step) {
                        client.segment(*id, seg.0).expect("write");
                    }
                    // Leave every fifth trip open-ended so the snapshot
                    // below captures genuinely live sessions.
                    if step + 1 == trip.len() && id % 5 != 0 {
                        client.trip_end(*id).expect("write");
                    }
                }
            }
            // Barrier: everything above is scored and its responses are in.
            let stats = client.flush().expect("flush barrier");
            let mut scores = 0usize;
            let mut finals: Vec<(u64, f64)> = Vec::new();
            while let Some(resp) = client.try_recv() {
                match resp {
                    Response::Score(_) => scores += 1,
                    Response::TripComplete(tc) => finals.push((tc.id, tc.score)),
                    Response::Error { code, trip, .. } => {
                        eprintln!("producer {producer}: server error {code} (trip {trip:?})")
                    }
                    _ => {}
                }
            }
            println!(
                "producer {producer}: {} trips, {scores} per-segment scores received \
                 (engine total: {} scored segments)",
                slice.len(),
                stats.segments_scored,
            );
            (finals, scores)
        }));
    }

    let mut all_finals: Vec<(u64, f64)> = Vec::new();
    let mut total_scores = 0usize;
    for handle in handles {
        let (finals, scores) = handle.join().expect("producer");
        all_finals.extend(finals);
        total_scores += scores;
    }

    // --- Rank trips by final anomaly score --------------------------------
    all_finals.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 10 most anomalous trips (scored over TCP):");
    println!("{:>6} {:>10}   label", "trip", "score");
    for (id, score) in all_finals.iter().take(10) {
        let label = match fleet[*id as usize].label {
            Label::Normal => "normal",
            _ => "DETOUR",
        };
        println!("{id:>6} {score:>10.2}   {label}");
    }
    let flagged = all_finals
        .iter()
        .take(30)
        .filter(|(id, _)| fleet[*id as usize].label != Label::Normal)
        .count();
    println!("\ndetours among the top-30 scores: {flagged}/30");

    // --- Remote warm restart: snapshot over the wire ----------------------
    let mut admin = Client::connect(addr).expect("connect");
    let blob = admin.snapshot().expect("snapshot over the wire");
    println!(
        "\nwire snapshot: {} bytes ({} sessions still live)",
        blob.len(),
        image_from_bytes(blob.clone()).expect("decodes").sessions.len()
    );
    let image = image_from_bytes(blob).expect("decodes");
    let restored =
        NetServer::builder(Arc::clone(&model)).resume(image).bind("127.0.0.1:0").expect("bind");
    // Quiesce so the seed message is processed before reading counters.
    restored.engine().flush().expect("shards live");
    println!(
        "restored server on {} with {} resumed sessions",
        restored.local_addr(),
        restored.stats().sessions_restored
    );
    restored.shutdown();

    let stats = server.shutdown();
    let per_segment_total = total_scores;
    println!(
        "\nfleet stats: {} events over TCP ({:.0} ev/s), {} segments scored in {} batches \
         (mean batch {:.1}), {} trips completed, {per_segment_total} scores streamed back",
        stats.events_ingested,
        stats.events_per_sec,
        stats.segments_scored,
        stats.batches,
        stats.mean_batch_size,
        stats.trips_completed,
    );
}
