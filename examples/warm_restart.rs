//! Warm restart: surviving a detector crash without losing in-flight
//! trips.
//!
//! Trains a quick CausalTAD model, streams a fleet of trips into a
//! `tad-serve` engine, and mid-stream captures a fleet snapshot — the
//! versioned, checksummed byte blob an operator would write to durable
//! storage on every checkpoint tick. The engine is then shut down (the
//! "crash"), a fresh engine is restored from the blob, and the rest of the
//! stream is replayed into it. Every trip's final anomaly score matches an
//! uninterrupted sequential run bit-for-bit.
//!
//! Run with: `cargo run --release --example warm_restart`

use std::sync::{mpsc, Arc};

use causaltad::{CausalTad, CausalTadConfig};
use causaltad_suite::serve::{
    image_from_bytes, Completion, Event, FleetConfig, FleetEngine, TripOutcome,
};
use causaltad_suite::trajsim::{generate_city, CityConfig, Trajectory};

fn main() {
    // --- Train a quick model --------------------------------------------
    let city = generate_city(&CityConfig::test_scale(1717));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 3;
    println!("training on {} trajectories ...", city.data.train.len());
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = Arc::new(model);

    // --- The event stream: an interleaved fleet of trips ----------------
    let fleet: Vec<&Trajectory> = city.data.test_id.iter().take(64).collect();
    let mut events = Vec::new();
    for (id, trip) in fleet.iter().enumerate() {
        let sd = trip.sd_pair();
        events.push(Event::TripStart {
            id: id as u64,
            source: sd.source.0,
            dest: sd.dest.0,
            time_slot: trip.time_slot,
        });
    }
    let longest = fleet.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, trip) in fleet.iter().enumerate() {
            if let Some(seg) = trip.segments.get(step) {
                events.push(Event::Segment { id: id as u64, seg: seg.0 });
            }
            if step + 1 == trip.len() {
                events.push(Event::TripEnd { id: id as u64 });
            }
        }
    }
    let split = fleet.len() + (events.len() - fleet.len()) / 2;

    let (tx, rx) = mpsc::channel::<TripOutcome>();
    let finished_only = move |outcome: TripOutcome| {
        // The crash below flushes live sessions as Completion::Shutdown;
        // only genuine trip ends are final scores.
        if outcome.completion == Completion::Ended {
            let _ = tx.send(outcome);
        }
    };

    // --- First life: serve half the stream, checkpoint, "crash" ---------
    let engine = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { max_batch: 256, ..FleetConfig::default() })
        .on_complete(finished_only.clone())
        .build()
        .expect("model is trained");
    println!("engine up: {} shards", engine.num_shards());
    for ev in &events[..split] {
        engine.submit(*ev).expect("engine is live");
    }
    let blob = engine.snapshot_bytes().expect("all shards live");
    println!(
        "checkpoint: {} of {} events served, snapshot is {} bytes",
        split,
        events.len(),
        blob.len()
    );
    engine.shutdown();
    println!("engine killed mid-stream (simulated crash)");

    // --- Second life: restore the snapshot, finish the stream -----------
    let image = image_from_bytes(blob).expect("snapshot decodes");
    println!("restoring {} live sessions", image.sessions.len());
    let restored = FleetEngine::restore(Arc::clone(&model), image)
        .config(FleetConfig { max_batch: 256, ..FleetConfig::default() })
        .on_complete(finished_only)
        .build()
        .expect("snapshot fits the model");
    for ev in &events[split..] {
        restored.submit(*ev).expect("engine is live");
    }
    let stats = restored.shutdown();

    // --- Verify against uninterrupted sequential scoring ----------------
    let outcomes: Vec<TripOutcome> = rx.iter().collect();
    let mut worst: f64 = 0.0;
    for outcome in &outcomes {
        let trip = fleet[outcome.id as usize];
        let sd = trip.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, trip.time_slot);
        let mut reference = f64::NAN;
        for &seg in &trip.segments {
            reference = scorer.push(seg.0);
        }
        worst = worst.max((outcome.score - reference).abs());
    }
    println!(
        "\n{} trips finished across the restart boundary ({} resumed from the snapshot)",
        outcomes.len(),
        stats.sessions_restored
    );
    println!("max |across-restart - uninterrupted| score gap: {worst:e}");
    assert_eq!(outcomes.len(), fleet.len(), "every trip must get exactly one final score");
    assert!(worst < 1e-9, "restart must not perturb scores");
    println!("warm restart is score-exact ✔");
}
