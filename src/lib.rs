//! # causaltad-suite
//!
//! Umbrella crate for the CausalTAD reproduction. It re-exports every
//! workspace crate under one roof so the examples and integration tests can
//! exercise the full pipeline with a single dependency:
//!
//! * [`autodiff`] — tensor + reverse-mode autodiff substrate.
//! * [`roadnet`] — road-network graph, city generator, Dijkstra/Yen,
//!   HMM map matching.
//! * [`trajsim`] — confounded trajectory simulator and anomaly generators.
//! * [`core`] — the CausalTAD model itself (TG-VAE + RP-VAE + online
//!   detector).
//! * [`baselines`] — the seven baselines from the paper.
//! * [`eval`] — metrics, experiment harness, standard synthetic cities.
//! * [`metrics`] — lock-free latency histograms, the counter/gauge
//!   registry shared by every serving tier, and the `TADM` snapshot
//!   codec behind the wire `MetricsRequest`.
//! * [`serve`] — the concurrent fleet-scoring engine multiplexing
//!   thousands of live online-scoring sessions with micro-batched model
//!   stepping.
//! * [`net`] — the TCP ingest front-end over the fleet engine: `TADN`
//!   wire protocol, concurrent server, blocking client.
//! * [`router`] — the cross-process sharding tier: a `TADN` router
//!   hash-partitioning trips across N `tad-net` backends, with fleet-wide
//!   flush barriers and merged snapshots for N→M warm restarts.
//!
//! See `README.md` for a tour, `docs/ARCHITECTURE.md` for the cross-crate
//! picture, `examples/quickstart.rs` for a minimal end-to-end run,
//! `examples/fleet_streaming.rs` for the serving layer,
//! `examples/network_fleet.rs` for scoring over the network, and
//! `examples/cluster_fleet.rs` for a routed multi-backend cluster with an
//! N→M warm restart.

pub use causaltad as core;
pub use tad_autodiff as autodiff;
pub use tad_baselines as baselines;
pub use tad_eval as eval;
pub use tad_metrics as metrics;
pub use tad_net as net;
pub use tad_roadnet as roadnet;
pub use tad_router as router;
pub use tad_serve as serve;
pub use tad_trajsim as trajsim;
