//! Cross-crate property-based tests: invariants that must hold for *any*
//! generated city, trajectory, or parameter setting.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tad_roadnet::dijkstra::{length_cost, node_shortest_path, segment_shortest_path};
use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
use tad_roadnet::NodeId;
use tad_trajsim::codec::{datasets_from_bytes, datasets_to_bytes};
use tad_trajsim::{generate_city, CityConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any generated grid city is strongly connected and has only valid
    /// segment endpoints.
    #[test]
    fn generated_cities_are_strongly_connected(seed in 0u64..500, w in 4usize..9, h in 4usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GridCityConfig { width: w, height: h, missing_edge_prob: 0.15, ..GridCityConfig::tiny() };
        let net = generate_grid_city(&cfg, &mut rng);
        prop_assert!(net.is_strongly_connected());
        for s in net.segment_ids() {
            let seg = net.segment(s);
            prop_assert!(seg.from.index() < net.num_nodes());
            prop_assert!(seg.to.index() < net.num_nodes());
            prop_assert!(seg.length > 0.0);
        }
    }

    /// Node-space Dijkstra between random nodes returns a valid connected
    /// walk anchored at the endpoints, and its cost equals the summed
    /// segment lengths.
    #[test]
    fn dijkstra_paths_are_valid_walks(seed in 0u64..500, a in 0u32..36, b in 0u32..36) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let (from, to) = (NodeId(a), NodeId(b));
        let r = node_shortest_path(&net, from, to, length_cost(&net)).expect("connected city");
        prop_assert!(net.is_connected_path(&r.segments));
        let total: f64 = r.segments.iter().map(|&s| net.segment(s).length).sum();
        prop_assert!((total - r.cost).abs() < 1e-9);
        if a != b {
            prop_assert_eq!(net.segment(r.segments[0]).from, from);
            prop_assert_eq!(net.segment(*r.segments.last().unwrap()).to, to);
        }
    }

    /// Segment-space Dijkstra is never cheaper when a segment is banned.
    #[test]
    fn banning_segments_never_shortens_paths(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let start = net.segment_ids().next().unwrap();
        let goal = net.segment_ids().last().unwrap();
        let Some(free) = segment_shortest_path(&net, start, goal, length_cost(&net)) else {
            return Ok(());
        };
        if free.segments.len() < 3 {
            return Ok(());
        }
        let banned = free.segments[1];
        if let Some(constrained) = segment_shortest_path(&net, start, goal, |s| {
            if s == banned { None } else { Some(net.segment(s).length) }
        }) {
            prop_assert!(constrained.cost >= free.cost - 1e-9);
            prop_assert!(!constrained.segments.contains(&banned));
        }
    }

    /// Dataset serialization round-trips for arbitrary generated cities.
    #[test]
    fn dataset_codec_roundtrips(seed in 0u64..100) {
        let city = generate_city(&CityConfig::test_scale(seed));
        let restored = datasets_from_bytes(datasets_to_bytes(&city.data)).unwrap();
        prop_assert_eq!(restored.train, city.data.train);
        prop_assert_eq!(restored.detour, city.data.detour);
        prop_assert_eq!(restored.switch, city.data.switch);
    }

    /// Every trajectory of a generated city is a valid walk whose label
    /// matches its split, and anomalies keep their base SD pair.
    #[test]
    fn city_trajectory_invariants(seed in 0u64..100) {
        let city = generate_city(&CityConfig::test_scale(seed));
        for t in city.data.train.iter().chain(&city.data.test_id).chain(&city.data.test_ood) {
            prop_assert!(t.label == tad_trajsim::Label::Normal);
            prop_assert!(city.net.is_connected_path(&t.segments));
        }
        for t in &city.data.detour {
            prop_assert!(t.label == tad_trajsim::Label::Detour);
            prop_assert!(city.net.is_connected_path(&t.segments));
        }
    }

    /// ROC-AUC is invariant under any positive affine transform of scores.
    #[test]
    fn roc_auc_affine_invariant(
        scores in prop::collection::vec(-100.0f64..100.0, 4..40),
        scale in 0.001f64..100.0,
        shift in -50.0f64..50.0,
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
        let transformed: Vec<f64> = scores.iter().map(|s| s * scale + shift).collect();
        let a = tad_eval::metrics::roc_auc(&scores, &labels);
        let b = tad_eval::metrics::roc_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// PR-AUC is bounded by (0, 1] and at least the positive rate for any
    /// scoring.
    #[test]
    fn pr_auc_bounds(
        scores in prop::collection::vec(-10.0f64..10.0, 6..30),
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let ap = tad_eval::metrics::pr_auc(&scores, &labels);
        let pos_rate = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        prop_assert!(ap > 0.0 && ap <= 1.0);
        // Average precision of any ranking is at least ~pos_rate * k factor;
        // use the loose lower bound AP >= pos_rate / n.
        prop_assert!(ap >= pos_rate / labels.len() as f64);
    }
}
