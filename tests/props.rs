//! Cross-crate property-based tests: invariants that must hold for *any*
//! generated city, trajectory, or parameter setting.

mod common;

use std::sync::Arc;

use causaltad_suite::core::{
    state_from_bytes, state_to_bytes, DeltaChainError, ScorerState, SegmentTrace, StateCodecError,
};
use causaltad_suite::metrics::{
    snapshot_from_bytes, snapshot_to_bytes, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
use causaltad_suite::net::{
    request_from_bytes, request_to_bytes, response_from_bytes, response_to_bytes, Client, Conn,
    ErrorCode, FrameError, NetServer, ReadStatus, Request, Response, TripComplete,
    DEFAULT_MAX_FRAME, FRAME_MAGIC,
};
use causaltad_suite::router::{backend_for, split_image, RouterServer};
use causaltad_suite::serve::{
    delta_from_bytes, delta_to_bytes, image_from_bytes, image_to_bytes, Completion, DeltaBase,
    Event, FleetConfig, FleetDelta, FleetImage, FleetSnapshot, GapPolicy, PolicyAction,
    ScoreUpdate, SessionRecord, SnapshotCodecError, StreamPolicy,
};
use common::script::scripted_conn;
use common::{
    assert_bit_identical, drain, in_process, interleave, send_events, trained, trip_of, Produced,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tad_roadnet::dijkstra::{length_cost, node_shortest_path, segment_shortest_path};
use tad_roadnet::grid::{generate_grid_city, GridCityConfig};
use tad_roadnet::NodeId;
use tad_trajsim::codec::{datasets_from_bytes, datasets_to_bytes};
use tad_trajsim::{corrupt_dataset, generate_city, CityConfig, CorruptionConfig, Trajectory};

/// Largest fleet the snapshot property tests exercise (the codec itself
/// has no cap below `u32::MAX` sessions).
const MAX_SNAPSHOT_SESSIONS: usize = 64;

/// Deterministically builds an arbitrary live-looking scorer state: random
/// hidden width (including the inert zero-width placeholder), random score
/// accumulators, and a random-length trace.
fn arb_state(rng: &mut StdRng) -> ScorerState {
    let hidden_width = rng.gen_range(0usize..48);
    let hidden: Vec<f32> = (0..hidden_width).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
    let last = if rng.gen_bool(0.8) { Some(rng.gen_range(0u32..10_000)) } else { None };
    let trace_len = rng.gen_range(0usize..24);
    let trace: Vec<SegmentTrace> = (0..trace_len)
        .map(|_| SegmentTrace {
            segment: rng.gen_range(0u32..10_000),
            nll: rng.gen_range(-50.0f64..50.0),
            log_scale: rng.gen_range(-5.0f64..5.0),
        })
        .collect();
    ScorerState::from_parts(
        hidden,
        rng.gen_range(-100.0f64..100.0),
        rng.gen_range(-100.0f64..100.0),
        rng.gen_range(-100.0f64..100.0),
        last,
        rng.gen_range(0u8..96),
        trace,
    )
}

fn arb_record(id: u64, rng: &mut StdRng) -> SessionRecord {
    let pending_len = rng.gen_range(0usize..6);
    SessionRecord {
        id,
        state: arb_state(rng),
        pending: (0..pending_len).map(|_| rng.gen_range(0u32..10_000)).collect(),
        ending: rng.gen_bool(0.1),
        idle_micros: rng.gen_range(0u64..600_000_000),
    }
}

fn arb_image(sessions: usize, rng: &mut StdRng) -> FleetImage {
    FleetImage {
        num_shards: rng.gen_range(1u32..16),
        sessions: (0..sessions as u64).map(|id| arb_record(id, rng)).collect(),
    }
}

/// An arbitrary wire request, covering every frame type.
fn arb_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0u8..9) {
        0 => Request::TripStart {
            id: rng.gen_range(0u64..u64::MAX),
            source: rng.gen_range(0u32..100_000),
            dest: rng.gen_range(0u32..100_000),
            time_slot: rng.gen_range(0u8..96),
        },
        1 => Request::Segment {
            id: rng.gen_range(0u64..u64::MAX),
            seg: rng.gen_range(0u32..100_000),
        },
        2 => Request::TripEnd { id: rng.gen_range(0u64..u64::MAX) },
        3 => Request::Flush,
        4 => Request::SnapshotRequest,
        5 => Request::MetricsRequest,
        6 => Request::DeltaRequest,
        7 => {
            let len = rng.gen_range(0usize..256);
            let image: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            Request::Install { image: image.into() }
        }
        _ => Request::Drain,
    }
}

/// An arbitrary metrics snapshot built the only way real ones are: by
/// recording into a live [`Registry`] — so it is canonical by
/// construction (name-ordered entries, derived histogram counts).
fn arb_metrics(rng: &mut StdRng) -> MetricsSnapshot {
    let registry = Registry::new();
    for i in 0..rng.gen_range(0usize..4) {
        registry.counter(&format!("tier{}.counter.{i}", rng.gen_range(0u8..3))).add(rng.next_u64());
    }
    for i in 0..rng.gen_range(0usize..3) {
        registry
            .gauge(&format!("tier{}.gauge.{i}", rng.gen_range(0u8..3)))
            .set(rng.next_u64() as i64);
    }
    for i in 0..rng.gen_range(0usize..3) {
        let h = registry.histogram(&format!("tier{}.hist.{i}", rng.gen_range(0u8..3)));
        for _ in 0..rng.gen_range(0usize..32) {
            // Bias towards small values but cover the full u64 range.
            let v: u64 = rng.next_u64() >> rng.gen_range(0u32..64);
            h.record_n(v, rng.gen_range(1u64..1_000));
        }
    }
    registry.snapshot()
}

fn arb_trace(rng: &mut StdRng) -> Vec<SegmentTrace> {
    let len = rng.gen_range(0usize..24);
    (0..len)
        .map(|_| SegmentTrace {
            segment: rng.gen_range(0u32..100_000),
            nll: rng.gen_range(-50.0f64..50.0),
            log_scale: rng.gen_range(-5.0f64..5.0),
        })
        .collect()
}

/// An arbitrary wire response, covering every frame type.
fn arb_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0u8..10) {
        0 => Response::Score(ScoreUpdate {
            id: rng.gen_range(0u64..u64::MAX),
            seq: rng.gen_range(0u32..10_000),
            segment: rng.gen_range(0u32..100_000),
            score: rng.gen_range(-100.0f64..100.0),
            nll: rng.gen_range(-100.0f64..100.0),
            log_scale: rng.gen_range(-10.0f64..10.0),
        }),
        1 => Response::TripComplete(TripComplete {
            id: rng.gen_range(0u64..u64::MAX),
            completion: match rng.gen_range(0u8..4) {
                0 => Completion::Ended,
                1 => Completion::EvictedTtl,
                2 => Completion::EvictedLru,
                _ => Completion::Shutdown,
            },
            score: rng.gen_range(-100.0f64..100.0),
            likelihood_nll: rng.gen_range(-100.0f64..100.0),
            scale_log_sum: rng.gen_range(-100.0f64..100.0),
            trace: arb_trace(rng),
        }),
        2 => Response::Stats(FleetSnapshot {
            events_ingested: rng.gen_range(0u64..u64::MAX),
            segments_scored: rng.gen_range(0u64..u64::MAX),
            trips_started: rng.gen_range(0u64..u64::MAX),
            trips_completed: rng.gen_range(0u64..u64::MAX),
            evictions_ttl: rng.gen_range(0u64..u64::MAX),
            evictions_lru: rng.gen_range(0u64..u64::MAX),
            rejected: rng.gen_range(0u64..u64::MAX),
            off_graph_hits: rng.gen_range(0u64..u64::MAX),
            batches: rng.gen_range(0u64..u64::MAX),
            active_sessions: rng.gen_range(0u64..u64::MAX),
            sessions_restored: rng.gen_range(0u64..u64::MAX),
            uptime_secs: rng.gen_range(0.0f64..1e9),
            events_per_sec: rng.gen_range(0.0f64..1e9),
            mean_batch_size: rng.gen_range(0.0f64..1e6),
        }),
        3 => {
            let detail_len = rng.gen_range(0usize..200);
            Response::Error {
                code: match rng.gen_range(0u8..8) {
                    0 => ErrorCode::Backpressure,
                    1 => ErrorCode::Rejected,
                    2 => ErrorCode::EngineClosed,
                    3 => ErrorCode::BadFrame,
                    4 => ErrorCode::SnapshotFailed,
                    5 => ErrorCode::Throttled,
                    6 => ErrorCode::ConnLimit,
                    _ => ErrorCode::IdleTimeout,
                },
                trip: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..u64::MAX)),
                retry_after_ms: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..600_000)),
                detail: (0..detail_len).map(|_| char::from(rng.gen_range(b' '..b'~'))).collect(),
            }
        }
        4 => {
            let len = rng.gen_range(0usize..256);
            let image: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            Response::Snapshot { image: image.into() }
        }
        5 => Response::PolicyNotice {
            id: rng.gen_range(0u64..u64::MAX),
            action: PolicyAction::from_wire_byte(rng.gen_range(0u8..9)).expect("valid wire byte"),
            seg: rng.gen_bool(0.5).then(|| rng.gen_range(0u32..100_000)),
        },
        6 => Response::Metrics(arb_metrics(rng)),
        7 => {
            let len = rng.gen_range(0usize..256);
            let delta: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            Response::Delta { delta: delta.into() }
        }
        8 => Response::Installed { sessions: rng.gen_range(0u64..u64::MAX) },
        _ => {
            let len = rng.gen_range(0usize..256);
            let image: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            Response::Drained { image: image.into() }
        }
    }
}

/// An arbitrary incremental capture for a given chain position: random
/// tombstones and random dirtied sessions (duplicate ids included — an
/// upsert is legal any number of times).
fn arb_delta(base_epoch: u64, seq: u64, sessions: usize, rng: &mut StdRng) -> FleetDelta {
    FleetDelta {
        base_epoch,
        seq,
        num_shards: rng.gen_range(1u32..16),
        removed: (0..rng.gen_range(0usize..6)).map(|_| rng.gen_range(0u64..1_000)).collect(),
        sessions: (0..sessions).map(|_| arb_record(rng.gen_range(0u64..1_000), rng)).collect(),
    }
}

/// Like [`drain`], but tolerating the [`Response::PolicyNotice`] frames a
/// policy-enabled server interleaves with its scores.
fn drain_with_notices(client: &mut Client, produced: &mut Produced) {
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(u) => {
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::PolicyNotice { .. } => {}
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

/// Pins the trip→backend partitioner to golden assignments. The function
/// is pure, so matching these constants proves determinism across
/// processes and restarts (no seeded `RandomState` can hide in it) — and
/// any change to the hash silently re-partitions every live fleet, so it
/// must show up here as a deliberate, reviewed diff.
#[test]
fn partitioner_matches_golden_assignments() {
    let golden: &[(u64, u32, u32)] = &[
        (0, 2, 0),
        (1, 2, 0),
        (2, 2, 0),
        (3, 2, 0),
        (12345, 2, 1),
        (u64::MAX, 2, 0),
        (0, 3, 0),
        (1, 3, 0),
        (7, 3, 2),
        (1000, 3, 1),
        (0, 8, 0),
        (41, 8, 1),
        (9999, 8, 7),
        (1 << 40, 8, 7),
        (123456789, 16, 0),
        (u64::MAX, 16, 3),
    ];
    for &(trip, backends, want) in golden {
        assert_eq!(backend_for(trip, backends), want, "backend_for({trip}, {backends})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any generated grid city is strongly connected and has only valid
    /// segment endpoints.
    #[test]
    fn generated_cities_are_strongly_connected(seed in 0u64..500, w in 4usize..9, h in 4usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GridCityConfig { width: w, height: h, missing_edge_prob: 0.15, ..GridCityConfig::tiny() };
        let net = generate_grid_city(&cfg, &mut rng);
        prop_assert!(net.is_strongly_connected());
        for s in net.segment_ids() {
            let seg = net.segment(s);
            prop_assert!(seg.from.index() < net.num_nodes());
            prop_assert!(seg.to.index() < net.num_nodes());
            prop_assert!(seg.length > 0.0);
        }
    }

    /// Node-space Dijkstra between random nodes returns a valid connected
    /// walk anchored at the endpoints, and its cost equals the summed
    /// segment lengths.
    #[test]
    fn dijkstra_paths_are_valid_walks(seed in 0u64..500, a in 0u32..36, b in 0u32..36) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let (from, to) = (NodeId(a), NodeId(b));
        let r = node_shortest_path(&net, from, to, length_cost(&net)).expect("connected city");
        prop_assert!(net.is_connected_path(&r.segments));
        let total: f64 = r.segments.iter().map(|&s| net.segment(s).length).sum();
        prop_assert!((total - r.cost).abs() < 1e-9);
        if a != b {
            prop_assert_eq!(net.segment(r.segments[0]).from, from);
            prop_assert_eq!(net.segment(*r.segments.last().unwrap()).to, to);
        }
    }

    /// Segment-space Dijkstra is never cheaper when a segment is banned.
    #[test]
    fn banning_segments_never_shortens_paths(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate_grid_city(&GridCityConfig::tiny(), &mut rng);
        let start = net.segment_ids().next().unwrap();
        let goal = net.segment_ids().last().unwrap();
        let Some(free) = segment_shortest_path(&net, start, goal, length_cost(&net)) else {
            return Ok(());
        };
        if free.segments.len() < 3 {
            return Ok(());
        }
        let banned = free.segments[1];
        if let Some(constrained) = segment_shortest_path(&net, start, goal, |s| {
            if s == banned { None } else { Some(net.segment(s).length) }
        }) {
            prop_assert!(constrained.cost >= free.cost - 1e-9);
            prop_assert!(!constrained.segments.contains(&banned));
        }
    }

    /// Dataset serialization round-trips for arbitrary generated cities.
    #[test]
    fn dataset_codec_roundtrips(seed in 0u64..100) {
        let city = generate_city(&CityConfig::test_scale(seed));
        let restored = datasets_from_bytes(datasets_to_bytes(&city.data)).unwrap();
        prop_assert_eq!(restored.train, city.data.train);
        prop_assert_eq!(restored.detour, city.data.detour);
        prop_assert_eq!(restored.switch, city.data.switch);
    }

    /// Every trajectory of a generated city is a valid walk whose label
    /// matches its split, and anomalies keep their base SD pair.
    #[test]
    fn city_trajectory_invariants(seed in 0u64..100) {
        let city = generate_city(&CityConfig::test_scale(seed));
        for t in city.data.train.iter().chain(&city.data.test_id).chain(&city.data.test_ood) {
            prop_assert!(t.label == tad_trajsim::Label::Normal);
            prop_assert!(city.net.is_connected_path(&t.segments));
        }
        for t in &city.data.detour {
            prop_assert!(t.label == tad_trajsim::Label::Detour);
            prop_assert!(city.net.is_connected_path(&t.segments));
        }
    }

    /// ROC-AUC is invariant under any positive affine transform of scores.
    #[test]
    fn roc_auc_affine_invariant(
        scores in prop::collection::vec(-100.0f64..100.0, 4..40),
        scale in 0.001f64..100.0,
        shift in -50.0f64..50.0,
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
        let transformed: Vec<f64> = scores.iter().map(|s| s * scale + shift).collect();
        let a = tad_eval::metrics::roc_auc(&scores, &labels);
        let b = tad_eval::metrics::roc_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// PR-AUC is bounded by (0, 1] and at least the positive rate for any
    /// scoring.
    #[test]
    fn pr_auc_bounds(
        scores in prop::collection::vec(-10.0f64..10.0, 6..30),
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let ap = tad_eval::metrics::pr_auc(&scores, &labels);
        let pos_rate = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        prop_assert!(ap > 0.0 && ap <= 1.0);
        // Average precision of any ranking is at least ~pos_rate * k factor;
        // use the loose lower bound AP >= pos_rate / n.
        prop_assert!(ap >= pos_rate / labels.len() as f64);
    }

    /// Arbitrary scorer states round-trip through the session codec
    /// byte-for-byte: `decode(encode(x)) == x` and re-encoding the decoded
    /// state reproduces the exact blob.
    #[test]
    fn scorer_state_codec_roundtrips(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = arb_state(&mut rng);
        let blob = state_to_bytes(&state);
        let decoded = state_from_bytes(blob.clone());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &state);
        prop_assert_eq!(state_to_bytes(&decoded).to_vec(), blob.to_vec());
    }

    /// Fleet snapshots round-trip for any session count, including the
    /// empty fleet and the strategy's maximum.
    #[test]
    fn fleet_snapshot_codec_roundtrips(seed in 0u64..10_000, n in 0usize..17) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Always exercise the boundary counts alongside the drawn one.
        for sessions in [0, n, MAX_SNAPSHOT_SESSIONS] {
            let image = arb_image(sessions, &mut rng);
            let blob = image_to_bytes(&image);
            let decoded = image_from_bytes(blob.clone());
            prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
            let decoded = decoded.unwrap();
            prop_assert_eq!(&decoded, &image);
            prop_assert_eq!(image_to_bytes(&decoded).to_vec(), blob.to_vec());
        }
    }

    /// Corrupt session blobs — truncated anywhere, or with any single bit
    /// flipped — always come back as a typed error, never a panic, and
    /// header corruption maps to the matching variant.
    #[test]
    fn corrupt_state_blobs_decode_to_typed_errors(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = state_to_bytes(&arb_state(&mut rng)).to_vec();

        let cut = rng.gen_range(0usize..blob.len());
        prop_assert!(state_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");

        let byte = rng.gen_range(0usize..blob.len());
        let bit = rng.gen_range(0u32..8);
        let mut flipped = blob.clone();
        flipped[byte] ^= 1 << bit;
        let err = state_from_bytes(flipped.into());
        prop_assert!(err.is_err(), "flip byte {byte} bit {bit} was accepted");
        match (byte, err.unwrap_err()) {
            (0..=3, StateCodecError::BadMagic) => {}
            (0..=3, other) => {
                return Err(TestCaseError::fail(format!("magic flip gave {other:?}")));
            }
            (4..=5, StateCodecError::BadVersion(_)) => {}
            (4..=5, other) => {
                return Err(TestCaseError::fail(format!("version flip gave {other:?}")));
            }
            _ => {} // body flips: Truncated or ChecksumMismatch, both fine
        }
    }

    /// The same battery for whole fleet snapshots: wrong magic, wrong
    /// version, every truncation, and random bit flips are all typed
    /// errors — `cargo test` proving the absence of any panic path.
    #[test]
    fn corrupt_fleet_snapshots_decode_to_typed_errors(seed in 0u64..10_000, n in 0usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = image_to_bytes(&arb_image(n, &mut rng)).to_vec();

        let mut wrong_magic = blob.clone();
        wrong_magic[1] = b'X';
        prop_assert_eq!(
            image_from_bytes(wrong_magic.into()).unwrap_err(),
            SnapshotCodecError::BadMagic
        );

        let mut wrong_version = blob.clone();
        wrong_version[4] = 0x42;
        match image_from_bytes(wrong_version.into()).unwrap_err() {
            SnapshotCodecError::BadVersion(0x42) => {}
            other => return Err(TestCaseError::fail(format!("version flip gave {other:?}"))),
        }

        let cut = rng.gen_range(0usize..blob.len());
        prop_assert!(image_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");

        for _ in 0..8 {
            let byte = rng.gen_range(0usize..blob.len());
            let bit = rng.gen_range(0u32..8);
            let mut flipped = blob.clone();
            flipped[byte] ^= 1 << bit;
            prop_assert!(
                image_from_bytes(flipped.into()).is_err(),
                "flip byte {byte} bit {bit} was accepted"
            );
        }
    }

    /// The trip→backend assignment is stable (identical on repeated
    /// calls) and in range for arbitrary trip ids and fleet sizes — the
    /// stickiness invariant the router tier's bit-exactness rests on.
    #[test]
    fn partitioner_is_stable_and_in_range(seed in 0u64..10_000, backends in 1u32..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let trip = rng.gen_range(0u64..u64::MAX);
            let b = backend_for(trip, backends);
            prop_assert!(b < backends, "backend_for({trip}, {backends}) = {b}");
            prop_assert_eq!(b, backend_for(trip, backends));
        }
    }

    /// Any trip-id distribution — dense sequential, strided, or uniformly
    /// random — balances across the fleet within tolerance (every backend
    /// within 2x of the fair share; the binomial noise at this sample
    /// size is far smaller).
    #[test]
    fn partitioner_balances_arbitrary_id_distributions(seed in 0u64..10_000, backends in 2u32..9) {
        const TRIPS: u64 = 4096;
        let mut rng = StdRng::seed_from_u64(seed);
        let base = rng.gen_range(0u64..u64::MAX / 2);
        let stride = rng.gen_range(1u64..1_000_000);
        for mode in 0..3 {
            let mut counts = vec![0u64; backends as usize];
            for i in 0..TRIPS {
                let trip = match mode {
                    0 => i,
                    1 => base.wrapping_add(i.wrapping_mul(stride)),
                    _ => rng.gen_range(0u64..u64::MAX),
                };
                counts[backend_for(trip, backends) as usize] += 1;
            }
            let mean = TRIPS / u64::from(backends);
            for (b, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c > mean / 2 && c < mean * 2,
                    "mode {} backend {}/{} got {} of {} trips (mean {})",
                    mode, b, backends, c, TRIPS, mean
                );
            }
        }
    }

    /// `split_image` routes every captured session to exactly the backend
    /// the router will send its future events to, loses nothing, and
    /// merging the parts reproduces the original session set — the
    /// restore-alignment invariant behind N→M warm restarts.
    #[test]
    fn split_image_aligns_with_trip_routing(seed in 0u64..10_000, n in 0usize..33, backends in 1u32..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let image = arb_image(n, &mut rng);
        let parts = split_image(image.clone(), backends);
        prop_assert_eq!(parts.len(), backends as usize);
        let total: usize = parts.iter().map(|p| p.sessions.len()).sum();
        prop_assert_eq!(total, image.sessions.len());
        for (idx, part) in parts.iter().enumerate() {
            for rec in &part.sessions {
                prop_assert_eq!(backend_for(rec.id, backends), idx as u32);
            }
        }
        let mut merged = FleetImage::merge(parts);
        merged.sessions.sort_by_key(|r| r.id);
        let mut want = image.sessions;
        want.sort_by_key(|r| r.id);
        prop_assert_eq!(merged.sessions, want);
    }

    /// `TADD` delta blobs round-trip byte-for-byte for any churn size —
    /// including the empty delta (no dirtied sessions, no tombstones) a
    /// quiet interval produces: `decode(encode(x)) == x` and re-encoding
    /// the decoded delta reproduces the exact blob.
    #[test]
    fn fleet_delta_codec_roundtrips(seed in 0u64..10_000, n in 0usize..17) {
        let mut rng = StdRng::seed_from_u64(seed);
        for sessions in [0, n, MAX_SNAPSHOT_SESSIONS] {
            let mut delta = arb_delta(
                rng.gen_range(1u64..1_000),
                rng.gen_range(1u64..1_000),
                sessions,
                &mut rng,
            );
            if sessions == 0 {
                delta.removed.clear(); // the fully empty quiet-interval delta
            }
            let blob = delta_to_bytes(&delta);
            let decoded = delta_from_bytes(blob.clone());
            prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
            let decoded = decoded.unwrap();
            prop_assert_eq!(&decoded, &delta);
            prop_assert_eq!(delta_to_bytes(&decoded).to_vec(), blob.to_vec());
        }
    }

    /// Corrupt `TADD` blobs — wrong magic, wrong version, truncated
    /// anywhere, or with random bits flipped — always decode to a typed
    /// [`SnapshotCodecError`], never a panic and never a silently wrong
    /// delta (the sealed-envelope checksum catches every body flip).
    #[test]
    fn corrupt_fleet_deltas_decode_to_typed_errors(seed in 0u64..10_000, n in 0usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let delta = arb_delta(rng.gen_range(1u64..1_000), rng.gen_range(1u64..1_000), n, &mut rng);
        let blob = delta_to_bytes(&delta).to_vec();

        let mut wrong_magic = blob.clone();
        wrong_magic[1] = b'X';
        prop_assert_eq!(
            delta_from_bytes(wrong_magic.into()).unwrap_err(),
            SnapshotCodecError::BadMagic
        );

        let mut wrong_version = blob.clone();
        wrong_version[4] = 0x42;
        match delta_from_bytes(wrong_version.into()).unwrap_err() {
            SnapshotCodecError::BadVersion(0x42) => {}
            other => return Err(TestCaseError::fail(format!("version flip gave {other:?}"))),
        }

        let cut = rng.gen_range(0usize..blob.len());
        prop_assert!(delta_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");

        for _ in 0..8 {
            let byte = rng.gen_range(0usize..blob.len());
            let bit = rng.gen_range(0u32..8);
            let mut flipped = blob.clone();
            flipped[byte] ^= 1 << bit;
            prop_assert!(
                delta_from_bytes(flipped.into()).is_err(),
                "flip byte {byte} bit {bit} was accepted"
            );
        }
    }

    /// A delta chain applies if and only if it is *exactly* the next link:
    /// wrong epoch, skipped seq, and replayed seq are all typed
    /// [`DeltaChainError`]s that leave the base untouched, while the
    /// in-order chain (fed through its serialized `TADD` form) applies
    /// clean — the fold can never silently reconstruct a wrong fleet.
    #[test]
    fn delta_chains_reject_out_of_order_links_typed(seed in 0u64..10_000, n in 0usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch = rng.gen_range(1u64..1_000);
        let mut base = DeltaBase::new(arb_image(n, &mut rng), epoch);
        let untouched = base.image().clone();

        // Wrong chain: different epoch, skipped seq, replayed seq.
        let foreign = arb_delta(epoch + 1, 1, 1, &mut rng);
        match base.apply(&foreign) {
            Err(DeltaChainError::BaseMismatch { expected_epoch, found_epoch }) => {
                prop_assert_eq!((expected_epoch, found_epoch), (epoch, epoch + 1));
            }
            other => return Err(TestCaseError::fail(format!("epoch mismatch gave {other:?}"))),
        }
        let skipped = arb_delta(epoch, 2, 1, &mut rng);
        match base.apply(&skipped) {
            Err(DeltaChainError::OutOfOrder { expected_seq: 1, found_seq: 2 }) => {}
            other => return Err(TestCaseError::fail(format!("seq skip gave {other:?}"))),
        }
        prop_assert_eq!(base.applied(), 0);
        prop_assert_eq!(base.image(), &untouched);

        // The real chain, folded through its serialized form.
        for seq in 1..=3u64 {
            let link = arb_delta(epoch, seq, rng.gen_range(0usize..4), &mut rng);
            let link = delta_from_bytes(delta_to_bytes(&link)).expect("TADD round-trip");
            prop_assert!(base.apply(&link).is_ok(), "in-order link {seq} rejected");
            // Replaying the link just applied is typed, not idempotent.
            match base.apply(&link) {
                Err(DeltaChainError::OutOfOrder { expected_seq, found_seq }) => {
                    prop_assert_eq!((expected_seq, found_seq), (seq + 1, seq));
                }
                other => return Err(TestCaseError::fail(format!("replay gave {other:?}"))),
            }
        }
        prop_assert_eq!(base.applied(), 3);
    }

    /// Every wire request frame type round-trips byte-for-byte:
    /// `decode(encode(x)) == x` and re-encoding reproduces the blob.
    #[test]
    fn wire_request_frames_roundtrip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let blob = request_to_bytes(&req);
        let decoded = request_from_bytes(blob.clone());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(request_to_bytes(&decoded).to_vec(), blob.to_vec());
    }

    /// Every wire response frame type round-trips byte-for-byte, score
    /// f64 bits included.
    #[test]
    fn wire_response_frames_roundtrip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resp = arb_response(&mut rng);
        let blob = response_to_bytes(&resp);
        let decoded = response_from_bytes(blob.clone());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(response_to_bytes(&decoded).to_vec(), blob.to_vec());
    }

    /// A frame decoded in the wrong direction (request as response or vice
    /// versa) is a typed error, never a misparse.
    #[test]
    fn wire_direction_confusion_is_typed(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(
            response_from_bytes(request_to_bytes(&arb_request(&mut rng))).unwrap_err(),
            FrameError::UnexpectedKind { expected: "response", got: "request" }
        );
        prop_assert_eq!(
            request_from_bytes(response_to_bytes(&arb_response(&mut rng))).unwrap_err(),
            FrameError::UnexpectedKind { expected: "request", got: "response" }
        );
    }

    /// Corrupt wire frames — truncated anywhere, or with any bit flipped —
    /// decode to typed errors from *both* decoders, never a panic, and
    /// header corruption maps to the matching variant. (The exhaustive
    /// every-byte × every-bit battery runs in `tad-net`'s unit tests;
    /// this mirrors the randomized style of the state/snapshot batteries
    /// above over arbitrary frames.)
    #[test]
    fn corrupt_wire_frames_decode_to_typed_errors(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = if rng.gen_bool(0.5) {
            request_to_bytes(&arb_request(&mut rng)).to_vec()
        } else {
            response_to_bytes(&arb_response(&mut rng)).to_vec()
        };

        let cut = rng.gen_range(0usize..blob.len());
        prop_assert!(request_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");
        prop_assert!(response_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut}");

        for _ in 0..8 {
            let byte = rng.gen_range(0usize..blob.len());
            let bit = rng.gen_range(0u32..8);
            let mut flipped = blob.clone();
            flipped[byte] ^= 1 << bit;
            let err = request_from_bytes(flipped.clone().into());
            prop_assert!(err.is_err(), "flip byte {byte} bit {bit} accepted as request");
            match (byte, err.unwrap_err()) {
                (0..=3, FrameError::BadMagic) => {}
                (0..=3, other) => {
                    return Err(TestCaseError::fail(format!("magic flip gave {other:?}")));
                }
                (4..=5, FrameError::BadVersion(_)) => {}
                (4..=5, other) => {
                    return Err(TestCaseError::fail(format!("version flip gave {other:?}")));
                }
                _ => {} // body flips: Truncated/ChecksumMismatch/kind errors, all fine
            }
            prop_assert!(
                response_from_bytes(flipped.into()).is_err(),
                "flip byte {byte} bit {bit} accepted as response"
            );
        }
    }

    /// The hostile-stream equivalence property: an arbitrarily corrupted
    /// interleaving — duplicated, reordered, and truncated per-trip
    /// streams, with some trips losing their `TripEnd` entirely — fed
    /// under one sampled [`StreamPolicy`] produces **bit-identical**
    /// scores through all three ingest tiers: direct in-process
    /// `FleetEngine`, the `tad-net` TCP front-end, and a `tad-router`
    /// over two backends. When the sampled policy is all-off, the strict
    /// [`drain`] additionally proves the wire carries *zero* policy
    /// frames — the policies-off path is observably identical to the
    /// pre-policy engine.
    #[test]
    fn hostile_streams_sanitize_identically_across_ingest_tiers(seed in 0u64..10_000) {
        let (city, model) = trained();
        let mut rng = StdRng::seed_from_u64(seed);
        let clean: Vec<Trajectory> = city.data.test_id.iter().take(5).cloned().collect();
        let corruption = CorruptionConfig {
            duplicate_prob: rng.gen_range(0.0..0.35),
            reorder_prob: rng.gen_range(0.0..0.35),
            drop_prob: rng.gen_range(0.0..0.2),
            jitter_prob: 0.0,
            teleport_prob: 0.0,
            seed: rng.next_u64(),
        };
        let dirty = corrupt_dataset(&city.net, &clean, &corruption);
        let refs: Vec<&Trajectory> = dirty.iter().collect();
        let mut events = interleave(&refs);
        // Truncation faults: some trips never see their TripEnd (the
        // producer died mid-trip); their sessions stay live to shutdown.
        let cut_ends: Vec<u64> =
            (0..refs.len() as u64).filter(|_| rng.gen_bool(0.2)).collect();
        events.retain(|ev| {
            !(matches!(ev, Event::TripEnd { .. }) && cut_ends.contains(&trip_of(ev)))
        });
        let policy = StreamPolicy {
            dedup_window: if rng.gen_bool(0.5) { rng.gen_range(1usize..4) } else { 0 },
            reorder_window: if rng.gen_bool(0.5) { rng.gen_range(1usize..4) } else { 0 },
            gap: if rng.gen_bool(0.5) { GapPolicy::Reset } else { GapPolicy::ScoreThrough },
        };
        let cfg = FleetConfig { num_shards: 2, policy: policy.clone(), ..FleetConfig::default() };

        let direct = in_process(model, &events, cfg.clone());

        // Network tier: same stream, same policy, over TCP.
        let server = NetServer::builder(Arc::clone(model))
            .fleet_config(cfg.clone())
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        send_events(&mut client, &events);
        client.flush().expect("barrier");
        let mut over_net = Produced::default();
        if policy.is_off() {
            drain(&mut client, &mut over_net);
        } else {
            drain_with_notices(&mut client, &mut over_net);
        }
        assert_bit_identical(&over_net, &direct);
        prop_assert_eq!(server.net_stats().responses_dropped, 0);
        server.shutdown();

        // Routed tier: the same stream through a router over two policy-
        // enabled backends.
        let backends: Vec<NetServer> = (0..2)
            .map(|_| {
                NetServer::builder(Arc::clone(model))
                    .fleet_config(cfg.clone())
                    .bind("127.0.0.1:0")
                    .expect("bind backend")
            })
            .collect();
        let router = RouterServer::builder()
            .backends(backends.iter().map(|b| b.local_addr()))
            .bind("127.0.0.1:0")
            .expect("bind router");
        let mut client = Client::connect(router.local_addr()).expect("connect");
        send_events(&mut client, &events);
        client.flush().expect("fleet barrier");
        let mut routed = Produced::default();
        if policy.is_off() {
            drain(&mut client, &mut routed);
        } else {
            drain_with_notices(&mut client, &mut routed);
        }
        assert_bit_identical(&routed, &direct);
        prop_assert_eq!(router.stats().responses_dropped, 0);
        router.shutdown();
        for backend in backends {
            backend.shutdown();
        }
    }

    /// The nonblocking read path reassembles frames bit-identically under
    /// *any* fragmentation: one arbitrary frame split at **every** byte
    /// boundary, and arbitrary multi-frame streams chopped into random
    /// chunks with a `WouldBlock` between each — driven through the same
    /// [`Conn`] state machine the production event loop uses, under
    /// random per-call read budgets.
    #[test]
    fn nonblocking_partial_reads_reassemble_frames_bit_identically(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);

        // Exhaustive: one frame, split at every single byte boundary.
        let single = request_to_bytes(&arb_request(&mut rng)).to_vec();
        for cut in 1..single.len() {
            let (io, h) = scripted_conn();
            h.push_read(&single[..cut]);
            h.push_read(&single[cut..]);
            h.eof();
            let mut conn = Conn::new(io, DEFAULT_MAX_FRAME);
            let mut out = Vec::new();
            loop {
                match conn.read_frames(usize::MAX, &mut out) {
                    Ok(ReadStatus::Eof) => break,
                    Ok(_) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("cut {cut}: {e}"))),
                }
            }
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(out[0].to_vec(), single.clone());
        }

        // Randomized: a multi-frame stream in arbitrary small chunks.
        let reqs: Vec<Request> =
            (0..rng.gen_range(1usize..10)).map(|_| arb_request(&mut rng)).collect();
        let frames: Vec<Vec<u8>> = reqs.iter().map(|r| request_to_bytes(r).to_vec()).collect();
        let stream: Vec<u8> = frames.concat();
        let (io, h) = scripted_conn();
        let mut pos = 0usize;
        while pos < stream.len() {
            let len = rng.gen_range(1usize..=(stream.len() - pos).min(31));
            h.push_read(&stream[pos..pos + len]);
            pos += len;
        }
        h.eof();
        let mut conn = Conn::new(io, DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        let mut spins = 0u32;
        loop {
            match conn.read_frames(rng.gen_range(1usize..4096), &mut out) {
                Ok(ReadStatus::Eof) => break,
                Ok(_) => {}
                Err(e) => return Err(TestCaseError::fail(format!("reassembly: {e}"))),
            }
            spins += 1;
            prop_assert!(spins < 100_000, "read loop did not terminate");
        }
        prop_assert_eq!(out.len(), frames.len());
        for (got, want) in out.iter().zip(&frames) {
            prop_assert_eq!(&got.to_vec(), want);
        }
        for (got, want) in out.iter().zip(&reqs) {
            prop_assert_eq!(&request_from_bytes(got.clone()).unwrap(), want);
        }
    }

    /// The nonblocking write path drains bit-identically under *any*
    /// short-write pattern: frames queued in random slices against a
    /// blocked transport, then flushed under random per-call caps and
    /// random window replenishments — the bytes on the wire are exactly
    /// the queued stream, and the backlog never survives a full drain.
    #[test]
    fn short_writes_drain_queued_frames_bit_identically(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resps: Vec<Response> =
            (0..rng.gen_range(1usize..10)).map(|_| arb_response(&mut rng)).collect();
        let stream: Vec<u8> =
            resps.iter().flat_map(|r| response_to_bytes(r).to_vec()).collect();

        let (io, h) = scripted_conn();
        h.set_write_window(0); // peer socket full: nothing drains yet
        let mut conn = Conn::new(io, DEFAULT_MAX_FRAME);
        let mut pos = 0usize;
        while pos < stream.len() {
            let len = rng.gen_range(1usize..=(stream.len() - pos).min(101));
            conn.queue_bytes(&stream[pos..pos + len]);
            pos += len;
            if rng.gen_bool(0.3) {
                prop_assert!(!conn.flush_writes().expect("write"), "drained through a 0 window");
            }
        }
        prop_assert_eq!(conn.write_backlog(), stream.len());
        prop_assert!(conn.wants_write());

        let mut spins = 0u32;
        loop {
            h.set_write_cap(rng.gen_range(1usize..64));
            h.set_write_window(rng.gen_range(1usize..64));
            if conn.flush_writes().expect("write") {
                break;
            }
            spins += 1;
            prop_assert!(spins < 100_000, "write loop did not terminate");
        }
        prop_assert!(!conn.wants_write());
        prop_assert_eq!(conn.write_backlog(), 0);
        prop_assert_eq!(h.take_written(), stream);
    }

    /// Hostile read interleavings — raw garbage spliced after valid
    /// frames, a bit flipped anywhere in a frame, or a frame truncated
    /// mid-body with a fresh frame behind it — never panic the read
    /// path: every frame before the corruption is delivered bit-exact,
    /// and the corruption itself surfaces as a typed error at one of the
    /// two validation layers (a framing `RecvError` from the assembler,
    /// or a checksum/decode `FrameError` on the emitted frame).
    #[test]
    fn hostile_read_interleavings_are_typed_errors_never_panics(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clean: Vec<Vec<u8>> = (0..rng.gen_range(0usize..4))
            .map(|_| request_to_bytes(&arb_request(&mut rng)).to_vec())
            .collect();
        let mut stream: Vec<u8> = clean.concat();
        match rng.gen_range(0u8..3) {
            0 => {
                // Raw garbage splice (first byte pinned off the magic so
                // detection is deterministic).
                let mut garbage: Vec<u8> =
                    (0..rng.gen_range(1usize..64)).map(|_| rng.gen_range(0u8..=255)).collect();
                if garbage[0] == FRAME_MAGIC[0] {
                    garbage[0] ^= 0xFF;
                }
                stream.extend_from_slice(&garbage);
            }
            1 => {
                // One bit flipped anywhere in an otherwise valid frame.
                let mut f = request_to_bytes(&arb_request(&mut rng)).to_vec();
                let byte = rng.gen_range(0usize..f.len());
                f[byte] ^= 1 << rng.gen_range(0u32..8);
                stream.extend_from_slice(&f);
            }
            _ => {
                // Framing lost: a frame truncated mid-body, then a fresh
                // valid frame whose bytes land inside the torn envelope.
                let f = request_to_bytes(&arb_request(&mut rng)).to_vec();
                let cut = rng.gen_range(1usize..f.len());
                stream.extend_from_slice(&f[..cut]);
                stream.extend_from_slice(&request_to_bytes(&arb_request(&mut rng)));
            }
        }

        let (io, h) = scripted_conn();
        let mut pos = 0usize;
        while pos < stream.len() {
            let len = rng.gen_range(1usize..=(stream.len() - pos).min(31));
            h.push_read(&stream[pos..pos + len]);
            pos += len;
        }
        h.eof();
        let mut conn = Conn::new(io, DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        let mut failure = None;
        let mut spins = 0u32;
        loop {
            match conn.read_frames(rng.gen_range(1usize..4096), &mut out) {
                Ok(ReadStatus::Eof) => break,
                Ok(_) => {}
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            spins += 1;
            prop_assert!(spins < 100_000, "read loop did not terminate");
        }
        let tail_hostile = out.len() > clean.len()
            && request_from_bytes(out[clean.len()].clone()).is_err();
        prop_assert!(failure.is_some() || tail_hostile, "hostile stream was accepted cleanly");
        prop_assert!(out.len() >= clean.len(), "a clean-prefix frame was lost");
        for (got, want) in out.iter().zip(&clean) {
            prop_assert_eq!(&got.to_vec(), want);
        }
    }

    /// Any metrics snapshot a registry can produce round-trips through the
    /// `TADM` codec byte-for-byte: `decode(encode(x)) == x` and
    /// re-encoding the decoded snapshot reproduces the exact blob — the
    /// bijection the router's fleet merge relies on.
    #[test]
    fn metrics_snapshot_codec_roundtrips(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let snapshot = arb_metrics(&mut rng);
        let blob = snapshot_to_bytes(&snapshot);
        let decoded = snapshot_from_bytes(blob.clone());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(snapshot_to_bytes(&decoded).to_vec(), blob.to_vec());
    }

    /// Histogram merge is exactly associative and commutative — grouping
    /// and order of backends can never change a fleet-wide histogram, so
    /// any merge tree (router fan-in, offline aggregation, re-merges)
    /// produces bit-identical results.
    #[test]
    fn histogram_merge_is_associative_and_commutative(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parts: Vec<HistogramSnapshot> = Vec::new();
        for _ in 0..3 {
            let h = Histogram::new();
            for _ in 0..rng.gen_range(0usize..48) {
                let v: u64 = rng.next_u64() >> rng.gen_range(0u32..64);
                h.record_n(v, rng.gen_range(1u64..1_000));
            }
            parts.push(h.snapshot());
        }
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
        let ab = HistogramSnapshot::merged(&[a.clone(), b.clone()]);
        let bc = HistogramSnapshot::merged(&[b.clone(), c.clone()]);
        let left = HistogramSnapshot::merged(&[ab.clone(), c.clone()]);
        let right = HistogramSnapshot::merged(&[a.clone(), bc]);
        let flat = HistogramSnapshot::merged(&parts);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(HistogramSnapshot::merged(&[b.clone(), a.clone()]), ab);
        // The identity element: merging with an empty histogram is a no-op.
        prop_assert_eq!(&HistogramSnapshot::merged(&[a.clone(), HistogramSnapshot::empty()]), a);

        // The same holds one level up, for whole snapshots keyed by name —
        // the discipline the router's fleet fan-in relies on.
        let (x, y, z) = (arb_metrics(&mut rng), arb_metrics(&mut rng), arb_metrics(&mut rng));
        let xy = MetricsSnapshot::merged(&[x.clone(), y.clone()]);
        let yz = MetricsSnapshot::merged(&[y.clone(), z.clone()]);
        let snap_left = MetricsSnapshot::merged(&[xy.clone(), z.clone()]);
        let snap_right = MetricsSnapshot::merged(&[x.clone(), yz]);
        prop_assert_eq!(&snap_left, &snap_right);
        prop_assert_eq!(MetricsSnapshot::merged(&[y, x]), xy);
        prop_assert_eq!(
            snapshot_from_bytes(snapshot_to_bytes(&snap_left)).unwrap(),
            snap_left
        );
    }
}

/// The exhaustive corruption battery for the `TADM` metrics codec: every
/// single-bit flip of every byte of a representative snapshot either
/// fails to decode (typed error, no panic) or decodes to a *different*
/// snapshot — no corruption can silently impersonate the original.
#[test]
fn metrics_blob_every_bit_flip_is_detected_or_distinct() {
    let registry = Registry::new();
    registry.counter("net.backpressure_replies").add(7);
    registry.gauge("serve.ingest_inflight").set(-3);
    let h = registry.histogram("serve.score_latency_ns");
    h.record(0);
    h.record(900);
    h.record_n(125_000, 64);
    h.record(u64::MAX);
    let snapshot = registry.snapshot();
    let blob = snapshot_to_bytes(&snapshot).to_vec();

    for cut in 0..blob.len() {
        assert!(snapshot_from_bytes(blob[..cut].to_vec().into()).is_err(), "cut={cut} accepted");
    }
    for byte in 0..blob.len() {
        for bit in 0..8 {
            let mut flipped = blob.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok(decoded) = snapshot_from_bytes(flipped.into()) {
                assert_ne!(
                    decoded, snapshot,
                    "flip byte {byte} bit {bit} decoded back to the original"
                );
            }
        }
    }
}

/// Concurrent recorders never lose a sample: hammering one histogram from
/// several threads yields a snapshot whose count and sum match the work
/// submitted exactly (the lock-free hot path is relaxed, but nothing is
/// dropped or double-counted).
#[test]
fn concurrent_histogram_recorders_are_exact() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25_000;
    let registry = std::sync::Arc::new(Registry::new());
    let h = registry.histogram("serve.score_latency_ns");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, THREADS * PER_THREAD);
    let n = THREADS * PER_THREAD;
    assert_eq!(snapshot.sum, n * (n - 1) / 2);
    assert_eq!(snapshot.min, 0);
    assert_eq!(snapshot.max, n - 1);
    // And the registry-level snapshot carries the identical histogram.
    assert_eq!(registry.snapshot().histogram("serve.score_latency_ns").unwrap(), &snapshot);
}
