//! Deterministic I/O harness for the readiness-driven ingest loop: an
//! in-memory transport ([`ScriptedIo`]) and an [`EventSource`] stand-in
//! ([`ScriptedSource`]) that replay *exact* readiness schedules — partial
//! reads at chosen byte boundaries, short writes under a per-call cap,
//! injection of new connections at chosen ticks — which real sockets
//! cannot be made to produce on demand. The production `EventLoop` runs
//! against these unmodified, so what the batteries prove holds for the
//! TCP path bit-for-bit.

#![allow(dead_code)]

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

use causaltad_suite::net::{EventSource, Interest, Readiness};

/// One scripted step of a transport's read side.
enum ReadStep {
    /// Bytes the next `read` calls return (split across calls if the
    /// caller's buffer is smaller).
    Data(Vec<u8>),
    /// Report `WouldBlock` once — the boundary between two ticks' worth
    /// of arrived bytes (a drained socket).
    WouldBlock,
    /// A clean end of stream.
    Eof,
}

/// Shared state behind one scripted connection: the test half pushes
/// reads and collects writes; the event-loop half owns a [`ScriptedIo`]
/// over the same state.
struct ScriptedState {
    reads: VecDeque<ReadStep>,
    written: Vec<u8>,
    /// Max bytes one `write` call accepts (`usize::MAX` = unlimited;
    /// small values force short writes).
    write_cap: usize,
    /// Total bytes `write` accepts before reporting `WouldBlock`
    /// (replenished by the script to model a draining peer socket).
    write_window: usize,
}

/// The event-loop half of a scripted connection: `Read`/`Write` over the
/// shared script. An exhausted read script reports `WouldBlock` (the
/// connection stays open until the script pushes [`ScriptedHandle::eof`]).
pub struct ScriptedIo(Arc<Mutex<ScriptedState>>);

/// The test half of a scripted connection.
#[derive(Clone)]
pub struct ScriptedHandle(Arc<Mutex<ScriptedState>>);

/// A connected scripted pair: the transport to inject into the loop and
/// the handle the test keeps.
pub fn scripted_conn() -> (ScriptedIo, ScriptedHandle) {
    let state = Arc::new(Mutex::new(ScriptedState {
        reads: VecDeque::new(),
        written: Vec::new(),
        write_cap: usize::MAX,
        write_window: usize::MAX,
    }));
    (ScriptedIo(Arc::clone(&state)), ScriptedHandle(state))
}

impl ScriptedHandle {
    /// Queues one tick's worth of arrived bytes: the connection's reads
    /// return them, then report `WouldBlock` (the socket is drained until
    /// the next scripted chunk).
    pub fn push_read(&self, bytes: &[u8]) {
        let mut s = self.0.lock().unwrap();
        s.reads.push_back(ReadStep::Data(bytes.to_vec()));
        s.reads.push_back(ReadStep::WouldBlock);
    }

    /// Ends the read stream cleanly after everything queued so far.
    pub fn eof(&self) {
        self.0.lock().unwrap().reads.push_back(ReadStep::Eof);
    }

    /// Caps how many bytes a single `write` call accepts.
    pub fn set_write_cap(&self, cap: usize) {
        self.0.lock().unwrap().write_cap = cap;
    }

    /// Sets how many total bytes writes accept before `WouldBlock`
    /// (models a full peer socket; bump it to model the peer draining).
    pub fn set_write_window(&self, window: usize) {
        self.0.lock().unwrap().write_window = window;
    }

    /// Takes every byte written so far.
    pub fn take_written(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap().written)
    }

    /// Bytes written so far, without consuming them.
    pub fn written_len(&self) -> usize {
        self.0.lock().unwrap().written.len()
    }
}

impl Read for ScriptedIo {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut s = self.0.lock().unwrap();
        match s.reads.front_mut() {
            None => Err(std::io::ErrorKind::WouldBlock.into()),
            Some(ReadStep::WouldBlock) => {
                s.reads.pop_front();
                Err(std::io::ErrorKind::WouldBlock.into())
            }
            Some(ReadStep::Eof) => Ok(0),
            Some(ReadStep::Data(chunk)) => {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                chunk.drain(..n);
                if chunk.is_empty() {
                    s.reads.pop_front();
                }
                Ok(n)
            }
        }
    }
}

impl Write for ScriptedIo {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut s = self.0.lock().unwrap();
        let n = buf.len().min(s.write_cap).min(s.write_window);
        if n == 0 {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        s.write_window -= n;
        let chunk = buf[..n].to_vec();
        s.written.extend_from_slice(&chunk);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One scripted event-loop tick: transports injected before readiness is
/// reported, then the readiness reports themselves. Keys are connection
/// ids in injection order (a fresh core assigns `0, 1, 2, …`).
#[derive(Default)]
pub struct Tick {
    pub inject: Vec<ScriptedIo>,
    pub ready: Vec<Readiness>,
    /// Side effects applied when the tick starts (inside `wait`, before
    /// readiness is reported) — e.g. widening a connection's write
    /// window to model the peer draining its socket.
    pub actions: Vec<Box<dyn FnOnce() + Send>>,
}

impl Tick {
    pub fn new() -> Tick {
        Tick::default()
    }

    pub fn inject(mut self, io: ScriptedIo) -> Tick {
        self.inject.push(io);
        self
    }

    pub fn act(mut self, f: impl FnOnce() + Send + 'static) -> Tick {
        self.actions.push(Box::new(f));
        self
    }

    pub fn readable(mut self, key: u64) -> Tick {
        self.ready.push(Readiness { key, readable: true, writable: false });
        self
    }

    pub fn writable(mut self, key: u64) -> Tick {
        self.ready.push(Readiness { key, readable: false, writable: true });
        self
    }

    pub fn both(mut self, key: u64) -> Tick {
        self.ready.push(Readiness { key, readable: true, writable: true });
        self
    }
}

/// An [`EventSource`] that replays a fixed schedule of ticks, reporting
/// scripted readiness filtered through the interest the loop registered —
/// exactly what a level-triggered kernel poller would report — and
/// logging every interest transition for assertions (pause/resume,
/// write-interest lifecycle). `wait` returns `Ok(false)` when the
/// schedule is exhausted, which shuts the loop down cleanly.
pub struct ScriptedSource {
    ticks: VecDeque<Tick>,
    registered: HashMap<u64, Interest>,
    pending_inject: Vec<ScriptedIo>,
    /// Every `(key, interest)` transition, in order: registrations and
    /// reregistrations alike. Shared so the test keeps a handle after the
    /// event loop takes ownership of the source.
    interest_log: Arc<Mutex<Vec<(u64, Interest)>>>,
}

impl ScriptedSource {
    pub fn new(ticks: Vec<Tick>) -> ScriptedSource {
        ScriptedSource {
            ticks: ticks.into(),
            registered: HashMap::new(),
            pending_inject: Vec::new(),
            interest_log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle on the interest-transition log that survives the source
    /// moving into the event loop.
    pub fn log_handle(&self) -> Arc<Mutex<Vec<(u64, Interest)>>> {
        Arc::clone(&self.interest_log)
    }

    /// The interest currently registered for `key` (None once
    /// deregistered).
    pub fn interest_of(&self, key: u64) -> Option<Interest> {
        self.registered.get(&key).copied()
    }
}

impl EventSource<ScriptedIo> for ScriptedSource {
    fn register(&mut self, key: u64, _io: &ScriptedIo, interest: Interest) -> std::io::Result<()> {
        self.registered.insert(key, interest);
        self.interest_log.lock().unwrap().push((key, interest));
        Ok(())
    }

    fn reregister(
        &mut self,
        key: u64,
        _io: &ScriptedIo,
        interest: Interest,
    ) -> std::io::Result<()> {
        self.registered.insert(key, interest);
        self.interest_log.lock().unwrap().push((key, interest));
        Ok(())
    }

    fn deregister(&mut self, key: u64, _io: &ScriptedIo) -> std::io::Result<()> {
        self.registered.remove(&key);
        Ok(())
    }

    fn wait(
        &mut self,
        out: &mut Vec<Readiness>,
        _timeout: Option<std::time::Duration>,
    ) -> std::io::Result<bool> {
        // The scripted schedule *is* the clock: timeouts are ignored and
        // every tick is one scripted entry.
        out.clear();
        let Some(tick) = self.ticks.pop_front() else {
            return Ok(false);
        };
        for action in tick.actions {
            action();
        }
        self.pending_inject = tick.inject;
        for r in tick.ready {
            // Injected connections register *after* wait returns, so a
            // same-tick readiness for a brand-new key must pass through
            // unfiltered (the loop itself guards unknown keys).
            let masked = match self.registered.get(&r.key) {
                Some(i) => Readiness {
                    key: r.key,
                    readable: r.readable && i.readable,
                    writable: r.writable && i.writable,
                },
                None => r,
            };
            if masked.readable || masked.writable {
                out.push(masked);
            }
        }
        Ok(true)
    }

    fn accept_injected(&mut self) -> Vec<ScriptedIo> {
        std::mem::take(&mut self.pending_inject)
    }
}
