//! Shared harness for the network-path equivalence batteries
//! (`tests/net.rs`, `tests/router.rs`): one trained model per test
//! binary, event-stream builders, the bit-level `Produced` record, the
//! in-process reference engine, and the bit-identity assertion both
//! batteries measure against.

pub mod script;

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use causaltad_suite::core::{CausalTad, CausalTadConfig};
use causaltad_suite::net::{Client, Response};
use causaltad_suite::serve::{Completion, Event, FleetConfig, FleetEngine, ScoreUpdate};
use causaltad_suite::trajsim::{generate_city, City, CityConfig, Trajectory};

/// One trained model shared by every test in a binary (training in debug
/// mode is expensive).
pub fn trained() -> &'static (City, Arc<CausalTad>) {
    static SHARED: OnceLock<(City, Arc<CausalTad>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let city = generate_city(&CityConfig::test_scale(321));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 1;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    })
}

/// Round-robin interleaving of complete trip streams (all starts first,
/// then one segment per live trip per step, ends inline).
pub fn interleave(trips: &[&Trajectory]) -> Vec<Event> {
    let mut events = Vec::new();
    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        events.push(Event::TripStart {
            id: id as u64,
            source: sd.source.0,
            dest: sd.dest.0,
            time_slot: t.time_slot,
        });
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                events.push(Event::Segment { id: id as u64, seg: seg.0 });
            }
            if step + 1 == t.len() {
                events.push(Event::TripEnd { id: id as u64 });
            }
        }
    }
    events
}

/// The trip an event belongs to.
pub fn trip_of(ev: &Event) -> u64 {
    match *ev {
        Event::TripStart { id, .. } | Event::Segment { id, .. } | Event::TripEnd { id } => id,
    }
}

/// Bit-level record of everything an engine produced: per-segment score
/// bits keyed by (trip, seq) and final (score bits, segment count) per
/// ended trip.
#[derive(Default)]
pub struct Produced {
    pub scores: HashMap<(u64, u32), u64>,
    pub finals: HashMap<u64, (u64, usize)>,
}

/// Runs `events` through one in-process engine, recording callbacks —
/// the reference every network/router path must match bit-for-bit.
pub fn in_process(model: &Arc<CausalTad>, events: &[Event], cfg: FleetConfig) -> Produced {
    let produced = Arc::new(Mutex::new(Produced::default()));
    let score_sink = Arc::clone(&produced);
    let complete_sink = Arc::clone(&produced);
    let engine = FleetEngine::builder(Arc::clone(model))
        .config(cfg)
        .on_score(move |u: &ScoreUpdate| {
            score_sink.lock().unwrap().scores.insert((u.id, u.seq), u.score.to_bits());
        })
        .on_complete(move |o| {
            if o.completion == Completion::Ended {
                complete_sink.lock().unwrap().finals.insert(o.id, (o.score.to_bits(), o.segments));
            }
        })
        .build()
        .expect("trained model");
    for &ev in events {
        engine.submit(ev).unwrap();
    }
    engine.shutdown();
    Arc::try_unwrap(produced).ok().expect("engine gone").into_inner().unwrap()
}

/// Sends `events` through a client in order (panicking on write errors).
pub fn send_events(client: &mut Client, events: &[Event]) {
    for &ev in events {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                client.trip_start(id, source, dest, time_slot).expect("write")
            }
            Event::Segment { id, seg } => client.segment(id, seg).expect("write"),
            Event::TripEnd { id } => client.trip_end(id).expect("write"),
        }
    }
}

/// Drains a client's queued responses into `produced`, panicking on any
/// error frame.
pub fn drain(client: &mut Client, produced: &mut Produced) {
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(u) => {
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::Error { code, trip, detail, .. } => {
                panic!("unexpected error frame: {code} trip={trip:?} {detail}")
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

/// Every per-segment and final score produced by `got` matches
/// `reference` bit-for-bit, with nothing missing or extra.
pub fn assert_bit_identical(got: &Produced, reference: &Produced) {
    assert_eq!(got.finals.len(), reference.finals.len(), "final-score count");
    for (id, reference_final) in &reference.finals {
        let got_final = got.finals.get(id).unwrap_or_else(|| panic!("trip {id} final"));
        assert_eq!(got_final, reference_final, "trip {id} final score bits");
    }
    assert_eq!(got.scores.len(), reference.scores.len(), "per-segment score count");
    for (key, bits) in &reference.scores {
        assert_eq!(got.scores.get(key), Some(bits), "score bits at {key:?}");
    }
}
