//! The paper's headline result as an integration test: on trajectories with
//! unseen SD pairs, CausalTAD retains usable detection quality while the
//! conditional baseline degrades sharply (Table II's shape).
//!
//! This trains two real models on a mid-sized confounded city, so it is the
//! slowest test in the repository (tens of seconds with the optimised test
//! profile).

use causaltad::CausalTadConfig;
use tad_baselines::{BaselineConfig, Detector, Vsae};
use tad_eval::cities::{xian_s, Scale};
use tad_eval::harness::evaluate;
use tad_eval::wrappers::CausalTadDetector;
use tad_trajsim::generate_city;

#[test]
fn causaltad_beats_vsae_out_of_distribution() {
    let mut cfg = xian_s(Scale::Quick);
    // Trim for test runtime while keeping the regime (many pairs, dense
    // coverage, genuine OOD shift).
    cfg.num_candidate_pairs = 40;
    cfg.trajs_per_pair = 14;
    cfg.num_ood_pairs = 30;
    cfg.num_anomalies = 120;
    let city = generate_city(&cfg);

    let epochs = 14;
    let mut vsae = Vsae::vsae(BaselineConfig { epochs, ..Default::default() });
    vsae.fit(&city.net, &city.data.train);
    let mut causal = CausalTadDetector::new(CausalTadConfig { epochs, ..Default::default() });
    causal.fit(&city.net, &city.data.train);

    // In distribution: both models must be strong.
    let vsae_id = evaluate(&vsae, &city.data.test_id, &city.data.detour).roc_auc;
    let causal_id = evaluate(&causal, &city.data.test_id, &city.data.detour).roc_auc;
    assert!(vsae_id > 0.8, "VSAE ID sanity: {vsae_id:.3}");
    assert!(causal_id > 0.8, "CausalTAD ID sanity: {causal_id:.3}");

    // Out of distribution: the paper's claim — CausalTAD generalises,
    // the conditional model does not.
    let vsae_ood = evaluate(&vsae, &city.data.test_ood, &city.data.detour).roc_auc;
    let causal_ood = evaluate(&causal, &city.data.test_ood, &city.data.detour).roc_auc;
    assert!(
        causal_ood > vsae_ood + 0.05,
        "CausalTAD must clearly beat VSAE on OOD: {causal_ood:.3} vs {vsae_ood:.3}"
    );

    // Both degrade from ID to OOD (the confounding is real), but CausalTAD
    // degrades less.
    let vsae_drop = vsae_id - vsae_ood;
    let causal_drop = causal_id - causal_ood;
    assert!(
        causal_drop < vsae_drop,
        "CausalTAD must degrade less: drop {causal_drop:.3} vs {vsae_drop:.3}"
    );
}

#[test]
fn debiasing_term_helps_ood_detection() {
    // Fig. 8's first observation: lambda = 0 (pure TG-VAE) is worse out of
    // distribution than a moderate lambda.
    let mut cfg = xian_s(Scale::Quick);
    cfg.num_candidate_pairs = 40;
    cfg.trajs_per_pair = 14;
    cfg.num_ood_pairs = 30;
    cfg.num_anomalies = 120;
    let city = generate_city(&cfg);

    let mut causal = CausalTadDetector::new(CausalTadConfig { epochs: 14, ..Default::default() });
    causal.fit(&city.net, &city.data.train);

    let auc_at = |det: &mut CausalTadDetector, lambda: f64| {
        det.set_lambda(lambda);
        let d = evaluate(&*det, &city.data.test_ood, &city.data.detour).roc_auc;
        let s = evaluate(&*det, &city.data.test_ood, &city.data.switch).roc_auc;
        (d + s) / 2.0
    };
    let ood_zero = auc_at(&mut causal, 0.0);
    let ood_mid = auc_at(&mut causal, 0.1);
    let ood_huge = auc_at(&mut causal, 2.0);
    assert!(
        ood_mid > ood_zero,
        "moderate lambda must help OOD: {ood_mid:.3} vs {ood_zero:.3} at zero"
    );
    assert!(ood_huge < ood_mid, "overblown lambda must hurt: {ood_huge:.3} vs {ood_mid:.3}");
}
