//! End-to-end integration tests spanning all crates: city generation →
//! training → scoring → metrics, plus the consistency guarantees the
//! online detector makes.

use causaltad::{CausalTad, CausalTadConfig};
use tad_eval::harness::evaluate;
use tad_eval::metrics::roc_auc;
use tad_trajsim::{generate_city, City, CityConfig, Label};

fn quick_city(seed: u64) -> City {
    let mut cfg = CityConfig::test_scale(seed);
    cfg.num_candidate_pairs = 16;
    cfg.trajs_per_pair = 10;
    cfg.num_anomalies = 40;
    generate_city(&cfg)
}

fn quick_model(city: &City, epochs: usize) -> CausalTad {
    let cfg = CausalTadConfig { epochs, ..Default::default() };
    let mut model = CausalTad::new(&city.net, cfg);
    let report = model.fit(&city.data.train);
    assert!(!report.diverged, "training diverged: {:?}", report.epoch_losses);
    model
}

#[test]
fn detects_id_anomalies_well_above_chance() {
    let city = quick_city(1000);
    let model = quick_model(&city, 8);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in &city.data.test_id {
        scores.push(model.score(t));
        labels.push(false);
    }
    for t in city.data.detour.iter().chain(&city.data.switch) {
        scores.push(model.score(t));
        labels.push(true);
    }
    let auc = roc_auc(&scores, &labels);
    assert!(auc > 0.75, "ID detection should be well above chance, got {auc:.3}");
}

#[test]
fn online_scoring_is_prefix_consistent() {
    // Scoring a prefix then continuing must equal scoring the whole
    // trajectory in one pass: the online state carries everything.
    let city = quick_city(1001);
    let model = quick_model(&city, 3);
    for t in city.data.test_id.iter().take(10) {
        let sd = t.sd_pair();
        let mut full = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments {
            full.push(seg.0);
        }

        let mid = t.len() / 2;
        let mut split = model.online(sd.source.0, sd.dest.0, t.time_slot);
        for &seg in &t.segments[..mid] {
            split.push(seg.0);
        }
        let prefix_score = split.score();
        assert_eq!(prefix_score, model.score_prefix(t, mid));
        for &seg in &t.segments[mid..] {
            split.push(seg.0);
        }
        assert!((full.score() - split.score()).abs() < 1e-9);
    }
}

#[test]
fn score_components_are_finite_for_every_pool() {
    let city = quick_city(1002);
    let model = quick_model(&city, 3);
    let pools = [
        &city.data.train,
        &city.data.test_id,
        &city.data.test_ood,
        &city.data.detour,
        &city.data.switch,
    ];
    for pool in pools {
        for t in pool.iter().take(20) {
            let s = model.score(t);
            assert!(s.is_finite(), "non-finite score for {:?} trajectory", t.label);
        }
    }
}

#[test]
fn lambda_sweep_is_well_defined_without_retraining() {
    let city = quick_city(1003);
    let mut model = quick_model(&city, 3);
    let t = &city.data.test_id[0];
    let mut last = f64::NAN;
    for lambda in [0.0, 0.05, 0.1, 0.5, 1.0] {
        model.set_lambda(lambda);
        let s = model.score(t);
        assert!(s.is_finite());
        assert_ne!(s, last, "distinct lambdas must change the score");
        last = s;
    }
}

#[test]
fn persisted_parameters_reproduce_scores() {
    use tad_autodiff::ParamStore;
    let city = quick_city(1004);
    let model = quick_model(&city, 3);
    // Round-trip the parameter store through the binary codec.
    let restored = ParamStore::from_bytes(model.store().to_bytes()).expect("decode");
    for id in model.store().ids() {
        assert_eq!(restored.value(id), model.store().value(id));
        assert_eq!(restored.name(id), model.store().name(id));
    }
}

#[test]
fn generated_anomalies_are_labelled_and_distinct() {
    let city = quick_city(1005);
    for t in &city.data.detour {
        assert_eq!(t.label, Label::Detour);
        assert!(city.net.is_connected_path(&t.segments));
    }
    for t in &city.data.switch {
        assert_eq!(t.label, Label::Switch);
        assert!(city.net.is_connected_path(&t.segments));
    }
}

#[test]
fn harness_evaluate_matches_manual_metrics() {
    let city = quick_city(1006);
    let model = quick_model(&city, 3);
    // Wrap the core model manually as the harness would use a detector.
    struct Wrap<'a>(&'a CausalTad);
    impl tad_baselines::Detector for Wrap<'_> {
        fn name(&self) -> &'static str {
            "wrap"
        }
        fn fit(&mut self, _: &tad_roadnet::RoadNetwork, _: &[tad_trajsim::Trajectory]) {}
        fn score_prefix(&self, t: &tad_trajsim::Trajectory, n: usize) -> f64 {
            self.0.score_prefix(t, n)
        }
    }
    let det = Wrap(&model);
    let r = evaluate(&det, &city.data.test_id, &city.data.detour);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in &city.data.test_id {
        scores.push(model.score(t));
        labels.push(false);
    }
    for t in &city.data.detour {
        scores.push(model.score(t));
        labels.push(true);
    }
    assert!((r.roc_auc - roc_auc(&scores, &labels)).abs() < 1e-12);
}
