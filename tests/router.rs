//! End-to-end equivalence battery for the `tad-router` tier: scores fed
//! through a router over N independent `tad-net` backends are
//! **bit-identical** to a single in-process `FleetEngine` ingesting the
//! same event stream — for every cohort composition, across fleet sizes,
//! across a routed snapshot captured from N backends and restored onto M,
//! and under partial failure (a dead backend surfaces typed errors while
//! healthy backends keep scoring).
//!
//! Bit-exactness holds because the router preserves per-trip event order
//! end to end (pure trip→backend assignment, one FIFO pipeline per
//! backend) and `CausalTad::push_batch` is bit-identical to sequential
//! `push_state` for every cohort composition — so it does not matter
//! which engine a trip lands on or how its events batch up there.

mod common;

use std::net::{Shutdown, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use causaltad_suite::core::CausalTad;
use causaltad_suite::net::{Client, ClientError, ErrorCode, NetServer, Response};
use causaltad_suite::router::{backend_for, split_image, RouterConfig, RouterServer};
use causaltad_suite::serve::{image_from_bytes, Completion, Event, FleetConfig};
use causaltad_suite::trajsim::Trajectory;
use common::{
    assert_bit_identical, drain, in_process, interleave, send_events, trained, trip_of, Produced,
};

/// Spins up `n` independent backend servers and a router over all of them.
fn spawn_fleet(
    model: &Arc<CausalTad>,
    n: usize,
    cfg: FleetConfig,
) -> (Vec<NetServer>, RouterServer) {
    let backends: Vec<NetServer> = (0..n)
        .map(|_| {
            NetServer::builder(Arc::clone(model))
                .fleet_config(cfg.clone())
                .bind("127.0.0.1:0")
                .expect("bind backend")
        })
        .collect();
    let router = RouterServer::builder()
        .backends(backends.iter().map(|b| b.local_addr()))
        .bind("127.0.0.1:0")
        .expect("bind router");
    (backends, router)
}

/// The core acceptance test: for 2- and 3-backend fleets, every
/// per-segment and final score produced through the router is
/// bit-identical to one in-process engine fed the same stream, the
/// aggregated `Flush` stats count the whole fleet, and each backend saw
/// exactly its partition of the trips.
#[test]
fn routed_scores_match_in_process_ingest_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());
    assert_eq!(reference.finals.len(), trips.len());

    for n_backends in [2usize, 3] {
        let (backends, router) = spawn_fleet(model, n_backends, cfg.clone());
        let mut client = Client::connect(router.local_addr()).expect("connect");
        send_events(&mut client, &events);
        let stats = client.flush().expect("fleet-wide barrier");
        assert_eq!(stats.trips_completed, trips.len() as u64, "aggregated completion count");
        assert_eq!(stats.rejected, 0);

        let mut routed = Produced::default();
        drain(&mut client, &mut routed);
        assert_bit_identical(&routed, &reference);

        // Trip stickiness: each backend engine started exactly the trips
        // the partitioner assigns it, and nothing else.
        for (idx, backend) in backends.iter().enumerate() {
            let own = (0..trips.len() as u64)
                .filter(|&id| backend_for(id, n_backends as u32) == idx as u32)
                .count() as u64;
            assert_eq!(backend.stats().trips_started, own, "backend {idx} partition");
        }
        let rstats = router.stats();
        assert_eq!(rstats.responses_dropped, 0);
        assert_eq!(rstats.backends_alive, n_backends as u64);
        router.shutdown();
        for backend in backends {
            backend.shutdown();
        }
    }
}

/// The routed warm-restart acceptance test: stream half the fleet through
/// a router over 2 backends, capture the **merged** snapshot over the
/// wire, kill the whole tier, re-partition the capture onto 3 fresh
/// backends with `split_image`, finish the stream through a new router —
/// and require every score across both phases to be bit-identical to one
/// uninterrupted in-process engine.
#[test]
fn routed_snapshot_restores_n_to_m_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    let split = trips.len() + (events.len() - trips.len()) * 2 / 5;
    let cfg = || FleetConfig { num_shards: 2, max_batch: 32, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg());

    let mut routed = Produced::default();

    // Phase A: 2 backends, half the traffic, merged snapshot over the wire.
    let (backends_a, router_a) = spawn_fleet(model, 2, cfg());
    let mut client_a = Client::connect(router_a.local_addr()).expect("connect");
    send_events(&mut client_a, &events[..split]);
    client_a.flush().expect("barrier");
    let blob = client_a.snapshot().expect("merged snapshot over the wire");
    drain(&mut client_a, &mut routed);
    drop(client_a);
    router_a.shutdown();
    for backend in backends_a {
        backend.shutdown(); // the "crash": every live session is gone
    }

    // Phase B: re-partition the 2-backend capture onto a 3-backend fleet.
    let image = image_from_bytes(blob).expect("merged blob decodes");
    let captured = image.sessions.len();
    assert!(captured > 0, "capture point should leave sessions in flight");
    let parts = split_image(image, 3);
    for (idx, part) in parts.iter().enumerate() {
        for rec in &part.sessions {
            assert_eq!(
                backend_for(rec.id, 3),
                idx as u32,
                "restore partition must align with event routing"
            );
        }
    }
    let backends_b: Vec<NetServer> = parts
        .into_iter()
        .map(|part| {
            NetServer::builder(Arc::clone(model))
                .fleet_config(FleetConfig {
                    num_shards: 3,
                    max_batch: 32,
                    ..FleetConfig::default()
                })
                .resume(part)
                .bind("127.0.0.1:0")
                .expect("bind restored backend")
        })
        .collect();
    let router_b = RouterServer::builder()
        .backends(backends_b.iter().map(|b| b.local_addr()))
        .bind("127.0.0.1:0")
        .expect("bind router");
    let mut client_b = Client::connect(router_b.local_addr()).expect("connect");
    send_events(&mut client_b, &events[split..]);
    let stats = client_b.flush().expect("barrier");
    assert_eq!(stats.sessions_restored, captured as u64, "aggregated restore count");
    drain(&mut client_b, &mut routed);

    assert_bit_identical(&routed, &reference);
    assert_eq!(router_b.stats().responses_dropped, 0);
    router_b.shutdown();
    for backend in backends_b {
        backend.shutdown();
    }
}

/// Fan-in isolation: two producers streaming disjoint trips through the
/// same router concurrently each receive exactly their own trips'
/// responses (their union still bit-identical to in-process ingest), and
/// a `TripStart` for an id another live connection owns is refused with a
/// typed reject that does not disturb the owner.
#[test]
fn router_fans_in_to_the_owning_front_connection_only() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(8).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());

    let (backends, router) = spawn_fleet(model, 2, cfg);
    let addr = router.local_addr();
    let handles: Vec<_> = (0..2u64)
        .map(|producer| {
            let own: Vec<Event> =
                events.iter().copied().filter(|ev| trip_of(ev) % 2 == producer).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                send_events(&mut client, &own);
                client.flush().expect("barrier");
                let mut got = Produced::default();
                drain(&mut client, &mut got);
                got
            })
        })
        .collect();
    let mut routed = Produced::default();
    for (producer, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("producer thread");
        for &(id, _) in got.scores.keys() {
            assert_eq!(id % 2, producer as u64, "cross-delivered score");
        }
        for &id in got.finals.keys() {
            assert_eq!(id % 2, producer as u64, "cross-delivered completion");
        }
        routed.scores.extend(got.scores);
        routed.finals.extend(got.finals);
    }
    assert_bit_identical(&routed, &reference);

    // Ownership is enforced at the router: a second connection cannot
    // start a trip a live connection owns.
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let mut owner = Client::connect(addr).expect("connect");
    let mut intruder = Client::connect(addr).expect("connect");
    owner.trip_start(100, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    owner.flush().expect("barrier");
    intruder.trip_start(100, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    intruder.flush().expect("barrier");
    match intruder.try_recv() {
        Some(Response::Error { code: ErrorCode::Rejected, trip: Some(100), .. }) => {}
        other => panic!("expected Rejected for trip 100, got {other:?}"),
    }
    owner.segment(100, t.segments[0].0).expect("write");
    owner.trip_end(100).expect("write");
    owner.flush().expect("barrier");
    let mut scored = 0;
    let mut completed = false;
    while let Some(resp) = owner.try_recv() {
        match resp {
            Response::Score(u) => {
                assert_eq!(u.id, 100);
                scored += 1;
            }
            Response::TripComplete(tc) => {
                assert_eq!((tc.id, tc.completion), (100, Completion::Ended));
                completed = true;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((scored, completed), (1, true), "the owner's trip was undisturbed");
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// Sanitization through the routed tier: backends configured with a dedup
/// window score a duplicated multi-trip stream bit-identically to the
/// clean stream through one in-process engine, and every
/// `PolicyNotice` fans in to the front connection that owns the trip —
/// the producer sees the same notices it would get talking to a backend
/// directly, and the fleet-merged metrics count every drop.
#[test]
fn policy_notices_fan_in_through_the_router_to_the_owner() {
    use causaltad_suite::serve::{PolicyAction, StreamPolicy};

    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(6).collect();
    let clean = interleave(&trips);
    // At-least-once transport: every segment frame arrives twice.
    let dirty: Vec<Event> = clean
        .iter()
        .flat_map(|&ev| match ev {
            Event::Segment { .. } => vec![ev, ev],
            other => vec![other],
        })
        .collect();
    let segments: usize = trips.iter().map(|t| t.len()).sum();

    // Reference: the *clean* stream through one unpoliced engine.
    let reference = in_process(model, &clean, FleetConfig::default());

    let cfg = FleetConfig {
        num_shards: 2,
        policy: StreamPolicy { dedup_window: 2, ..StreamPolicy::default() },
        ..FleetConfig::default()
    };
    let (backends, router) = spawn_fleet(model, 2, cfg);
    let addr = router.local_addr();
    let handles: Vec<_> = (0..2u64)
        .map(|producer| {
            let own: Vec<Event> =
                dirty.iter().copied().filter(|ev| trip_of(ev) % 2 == producer).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                send_events(&mut client, &own);
                client.flush().expect("barrier");
                let mut got = Produced::default();
                let mut notices = Vec::new();
                while let Some(resp) = client.try_recv() {
                    match resp {
                        Response::Score(u) => {
                            got.scores.insert((u.id, u.seq), u.score.to_bits());
                        }
                        Response::TripComplete(tc) => {
                            if tc.completion == Completion::Ended {
                                got.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                            }
                        }
                        Response::PolicyNotice { id, action, seg } => {
                            assert_eq!(action, PolicyAction::DedupDropped);
                            assert!(seg.is_some());
                            notices.push(id);
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                (got, notices)
            })
        })
        .collect();
    let mut routed = Produced::default();
    let mut notice_total = 0usize;
    for (producer, handle) in handles.into_iter().enumerate() {
        let (got, notices) = handle.join().expect("producer thread");
        for &id in &notices {
            assert_eq!(id % 2, producer as u64, "notice fanned in to the wrong producer");
        }
        notice_total += notices.len();
        routed.scores.extend(got.scores);
        routed.finals.extend(got.finals);
    }
    assert_bit_identical(&routed, &reference);
    assert_eq!(notice_total, segments, "one notice per duplicated segment");

    // The fleet-merged metrics agree with the wire notices.
    let mut client = Client::connect(addr).expect("connect");
    let fleet = client.metrics().expect("fleet metrics");
    assert_eq!(fleet.counter("serve.dedup_dropped"), Some(segments as u64));
    assert_eq!(router.stats().responses_dropped, 0);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// The observability acceptance test: one `MetricsRequest` against the
/// router returns the fleet view — every backend's registry plus the
/// router's own — and that wire-merged snapshot is **bit-identical**
/// (struct equality and re-encoded bytes) to merging the same registries
/// in process. Arrival order at the barrier cannot matter because the
/// histogram merge is an exact element-wise sum, hence commutative.
#[test]
fn fleet_metrics_merged_over_the_wire_match_in_process_aggregation() {
    use causaltad_suite::metrics::{snapshot_to_bytes, MetricsSnapshot};

    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let (backends, router) = spawn_fleet(model, 2, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    send_events(&mut client, &events);
    client.flush().expect("fleet barrier");
    let mut routed = Produced::default();
    drain(&mut client, &mut routed);
    assert_eq!(routed.finals.len(), trips.len());

    let fleet = client.metrics().expect("fleet metrics over the wire");

    // In-process ground truth, computed after the wire answer at a
    // quiesced point: the same registries must merge to the same bits.
    let parts: Vec<MetricsSnapshot> =
        backends.iter().map(|b| b.metrics()).chain([router.metrics()]).collect();
    let expect = MetricsSnapshot::merged(&parts);
    assert_eq!(fleet, expect, "wire-merged fleet metrics must equal in-process aggregation");
    assert_eq!(
        snapshot_to_bytes(&fleet),
        snapshot_to_bytes(&expect),
        "wire-merged fleet metrics must re-encode to identical bytes"
    );

    // The single snapshot covers all three tiers. Serve: one latency
    // sample per scored segment, fleet-wide.
    let segments: u64 = trips.iter().map(|t| t.segments.len() as u64).sum();
    let lat = fleet.histogram("serve.score_latency_ns").expect("serve histogram");
    assert_eq!(lat.count, segments, "one fleet-wide latency sample per segment");
    // Router: one forward sample per ingest event, and the per-backend
    // split sums to the total.
    let fwd = fleet.histogram("router.forward_ns").expect("router histogram");
    assert_eq!(fwd.count, events.len() as u64, "one forward sample per ingest event");
    let per_backend: u64 = (0..2)
        .map(|i| fleet.histogram(&format!("router.backend.{i}.forward_ns")).map_or(0, |h| h.count))
        .sum();
    assert_eq!(per_backend, fwd.count, "per-backend forwards sum to the fleet total");
    // Net: both backends decoded frames.
    assert!(fleet.histogram("net.frame_decode_ns").expect("net histogram").count > 0);

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// Fault injection: killing one backend mid-stream surfaces typed
/// `EngineClosed` errors for its trips to the affected front connection —
/// both for the loss itself and for any later event routed to the dead
/// backend — while trips on the healthy backend keep scoring, complete
/// normally, and the fleet-wide flush barrier still answers.
#[test]
fn dead_backend_surfaces_typed_errors_without_stalling_healthy_trips() {
    let (city, model) = trained();
    let id_dead = (0..).find(|&i| backend_for(i, 2) == 0).expect("some id maps to backend 0");
    let id_live = (0..).find(|&i| backend_for(i, 2) == 1).expect("some id maps to backend 1");
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let cfg = FleetConfig { num_shards: 1, ..FleetConfig::default() };
    let (mut backends, router) = spawn_fleet(model, 2, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");

    for &id in &[id_dead, id_live] {
        client.trip_start(id, sd.source.0, sd.dest.0, t.time_slot).expect("write");
        client.segment(id, t.segments[0].0).expect("write");
    }
    client.flush().expect("both backends healthy");

    // Kill the backend owning `id_dead`; wait for the router to notice
    // the dead link (it learns asynchronously, from the broken socket).
    backends.remove(0).shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.stats().backends_alive != 1 {
        assert!(Instant::now() < deadline, "router never noticed the dead backend");
        std::thread::sleep(Duration::from_millis(10));
    }

    client.segment(id_dead, t.segments[1].0).expect("write");
    client.segment(id_live, t.segments[1].0).expect("write");
    client.trip_end(id_live).expect("write");
    let stats = client.flush().expect("flush must still answer over the surviving backend");
    assert_eq!(stats.trips_completed, 1);

    let mut dead_errors = 0;
    let mut live_scores = 0;
    let mut live_final = None;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Error { code: ErrorCode::EngineClosed, trip: Some(id), .. } => {
                assert_eq!(id, id_dead, "only the dead backend's trip errors");
                dead_errors += 1;
            }
            Response::Score(u) => {
                if u.id == id_live {
                    live_scores += 1;
                } else {
                    assert_eq!(u.id, id_dead, "pre-kill score for the doomed trip");
                }
            }
            Response::TripComplete(tc) => {
                assert_eq!((tc.id, tc.completion), (id_live, Completion::Ended));
                live_final = Some(tc);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(dead_errors >= 1, "the dead trip surfaced at least one typed error");
    assert_eq!(live_scores, 2, "the healthy trip scored every segment");
    assert_eq!(live_final.expect("healthy trip completed").segments(), 2);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// Liveness for producers wedged behind a dead link: a backend that
/// stalls (never reads) fills the link's write buffer, then its bounded
/// channel, until the front reader blocks in the channel send — the
/// designed backpressure point. When that backend then dies, the mux
/// must drop the link's channel receiver at reap time so the blocked
/// producer is woken with a send error immediately, and the router's
/// shutdown (which queues a per-link `Close` on that same channel) must
/// complete instead of hanging on the full channel. A second, healthy
/// backend keeps the mux thread running, so receiver cleanup cannot be
/// deferred to mux exit.
#[test]
fn dead_stalled_backend_unblocks_producers_and_shutdown() {
    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let (source, dest, slot) = (sd.source.0, sd.dest.0, t.time_slot);

    // Victim backend 0: accepts the router's link and never reads.
    let stall = TcpListener::bind("127.0.0.1:0").expect("bind stalled backend");
    let stall_addr = stall.local_addr().expect("stalled backend addr");
    let accepter = std::thread::spawn(move || {
        let (sock, _) = stall.accept().expect("accept router link");
        sock
    });

    let cfg = FleetConfig { num_shards: 1, ..FleetConfig::default() };
    let healthy =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let router = RouterServer::builder()
        .backends([stall_addr, healthy.local_addr()])
        // A small channel keeps the amount of traffic needed to reach
        // the blocking point test-sized.
        .config(RouterConfig { backend_queue: 64, ..RouterConfig::default() })
        .bind("127.0.0.1:0")
        .expect("bind router");
    let victim_sock = accepter.join().expect("router connected to the stalled backend");

    // Producer: hammer trips owned by the stalled backend until told to
    // stop (it cannot make progress while the victim is alive and every
    // buffer in between is full).
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let sent = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (progress, halt) = (Arc::clone(&sent), Arc::clone(&stop));
    let producer = std::thread::spawn(move || {
        for id in (0..u64::MAX).filter(|&i| backend_for(i, 2) == 0) {
            if halt.load(Ordering::Relaxed) || client.trip_start(id, source, dest, slot).is_err() {
                break;
            }
            progress.fetch_add(1, Ordering::Relaxed);
        }
    });

    // Wait until the producer is actually wedged: the sent counter stops
    // moving once every buffer between client and victim is full and the
    // front reader is blocked in the link channel send.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let before = sent.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(300));
        if sent.load(Ordering::Relaxed) == before {
            break;
        }
        assert!(Instant::now() < deadline, "producer never hit the backpressure point");
    }
    assert!(!producer.is_finished(), "producer must be blocked, not errored, pre-kill");

    // Kill the victim. The mux reaps the link; dropping the channel
    // receiver is what wakes the front reader blocked in the send.
    victim_sock.shutdown(Shutdown::Both).expect("kill victim link");
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.stats().backends_alive != 1 {
        assert!(Instant::now() < deadline, "router never noticed the dead backend");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The woken front reader drains the backlog (typed errors now, no
    // forwarding), so the producer's writes start landing again: resumed
    // progress is the observable proof that the blocked channel send was
    // failed rather than leaked.
    let wedged = sent.load(Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(20);
    while sent.load(Ordering::Relaxed) == wedged {
        assert!(Instant::now() < deadline, "producer was never unblocked after the link died");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Stop the producer while its writes still flow (after the router's
    // front sockets close, a blocked client write can linger for the
    // whole TCP orphan timeout — kernel behaviour, not router liveness).
    stop.store(true, Ordering::Relaxed);
    producer.join().expect("producer thread");

    // Shutdown queues a blocking per-link `Close`: this hangs forever if
    // the dead link's channel receiver leaked with a full channel.
    let shut = std::thread::spawn(move || router.shutdown());
    let deadline = Instant::now() + Duration::from_secs(20);
    while !shut.is_finished() {
        assert!(Instant::now() < deadline, "router shutdown hung on the dead link's channel");
        std::thread::sleep(Duration::from_millis(20));
    }
    shut.join().expect("shutdown thread");
    healthy.shutdown();
}

/// Liveness under racing failure: fleet-wide flush barriers hammered
/// while a backend dies mid-stream must *always* resolve — with
/// aggregated stats (before the kill, or over the survivor once the dead
/// link is noticed) or a typed barrier failure (when the kill lands
/// mid-barrier) — never by hanging. This is the regression guard for the
/// staging race where a barrier accepted onto a dying backend's channel
/// missed both the wire and the backend-down sweep.
#[test]
fn flush_barriers_racing_a_backend_kill_always_resolve() {
    let (_, model) = trained();
    let cfg = FleetConfig { num_shards: 1, ..FleetConfig::default() };
    let (mut backends, router) = spawn_fleet(model, 2, cfg);
    let mut client = Client::connect(router.local_addr())
        .expect("connect")
        .with_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout set");

    let victim = backends.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        victim.shutdown();
    });
    let mut served = 0usize;
    let mut failed = 0usize;
    for _ in 0..200 {
        match client.flush() {
            Ok(_) => served += 1,
            // The kill landed mid-barrier: a typed failure, not a hang.
            Err(ClientError::Server { .. }) => failed += 1,
            Err(ClientError::Timeout) => {
                panic!(
                    "flush hung: a barrier was never resolved (after {served} ok, {failed} failed)"
                )
            }
            Err(other) => panic!("unexpected flush failure: {other}"),
        }
    }
    killer.join().expect("killer thread");
    assert!(served > 0, "flushes must keep being served before and after the kill");
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Availability tier: failover, drain/handoff, rebalance, barrier semantics
// ---------------------------------------------------------------------------

use causaltad_suite::router::RouterAdminError;

/// Spins up `n` active backends plus `s` standbys and a router over all
/// of them. The returned server list is actives first, then standbys.
fn spawn_fleet_with_standbys(
    model: &Arc<CausalTad>,
    n: usize,
    s: usize,
    cfg: FleetConfig,
) -> (Vec<NetServer>, RouterServer) {
    let backends: Vec<NetServer> = (0..n + s)
        .map(|_| {
            NetServer::builder(Arc::clone(model))
                .fleet_config(cfg.clone())
                .bind("127.0.0.1:0")
                .expect("bind backend")
        })
        .collect();
    let router = RouterServer::builder()
        .backends(backends.iter().take(n).map(|b| b.local_addr()))
        .standbys(backends.iter().skip(n).map(|b| b.local_addr()))
        .bind("127.0.0.1:0")
        .expect("bind router");
    (backends, router)
}

/// Drains a client like [`drain`] but also counts raw `Score` and
/// `TripComplete` frames — the exactly-once ledger a `Produced` map
/// (keyed, last-write-wins) cannot see duplicates in.
fn drain_counted(client: &mut Client, produced: &mut Produced) -> (usize, usize) {
    let mut scores = 0usize;
    let mut completes = 0usize;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(u) => {
                scores += 1;
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                completes += 1;
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::Error { code, trip, detail, .. } => {
                panic!("unexpected error frame: {code} trip={trip:?} {detail}")
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    (scores, completes)
}

/// The failover acceptance test: checkpoint the fleet (full, then
/// incremental `TADD` captures), keep streaming, kill an active backend,
/// keep streaming *through the failover* — and require the producer's
/// complete response stream to be bit-identical to an uninterrupted
/// in-process engine, with every score delivered exactly once and zero
/// error frames.
#[test]
fn failover_to_standby_is_bit_identical_and_exactly_once() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());
    let total_segments = reference.scores.len();

    let (mut backends, router) = spawn_fleet_with_standbys(model, 2, 1, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let mut routed = Produced::default();
    let (mut raw_scores, mut raw_completes) = (0usize, 0usize);
    let count = |pair: (usize, usize), raw_scores: &mut usize, raw_completes: &mut usize| {
        *raw_scores += pair.0;
        *raw_completes += pair.1;
    };

    // Phase 1: stream a third, checkpoint — every capture is a full
    // image (nothing is armed yet).
    let (a, b) = (events.len() / 3, events.len() * 2 / 3);
    send_events(&mut client, &events[..a]);
    client.flush().expect("barrier");
    count(drain_counted(&mut client, &mut routed), &mut raw_scores, &mut raw_completes);
    let sweep = router.checkpoint().expect("first checkpoint sweep");
    assert_eq!((sweep.full_captures, sweep.delta_captures), (2, 0), "cold sweep is full");

    // Phase 2: more churn, checkpoint again — now the chains are armed
    // and every capture is an incremental delta.
    send_events(&mut client, &events[a..b]);
    client.flush().expect("barrier");
    count(drain_counted(&mut client, &mut routed), &mut raw_scores, &mut raw_completes);
    let sweep = router.checkpoint().expect("second checkpoint sweep");
    assert_eq!((sweep.full_captures, sweep.delta_captures), (0, 2), "warm sweep is delta");

    // Phase 3: kill active backend 0 and keep streaming without waiting
    // for the router to notice — producers must ride the failover out.
    backends.remove(0).shutdown();
    send_events(&mut client, &events[b..]);
    client.flush().expect("flush rides out the failover");
    count(drain_counted(&mut client, &mut routed), &mut raw_scores, &mut raw_completes);

    assert_bit_identical(&routed, &reference);
    assert_eq!(raw_scores, total_segments, "every score exactly once, no duplicates");
    assert_eq!(raw_completes, trips.len(), "every completion exactly once");

    let stats = router.stats();
    assert_eq!(stats.failovers, 1, "exactly one promotion");
    assert_eq!(stats.standbys_available, 0, "the standby was consumed");
    assert_eq!(stats.partition_epoch, 1, "the map flipped once");
    assert!(stats.last_recovery_micros > 0, "recovery time was measured");
    assert_eq!(stats.backends_alive, 2, "two of three links remain");
    let metrics = router.metrics();
    assert_eq!(metrics.counter("router.failovers"), Some(1));

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// Failover with *no checkpoint ever taken*: the journal base is the
/// empty fleet and the tail is the entire forwarded history, so the
/// promoted standby replays the dead backend's whole life — still
/// bit-identical, still exactly-once.
#[test]
fn failover_without_checkpoint_replays_from_the_empty_base() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(8).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    let (mut backends, router) = spawn_fleet_with_standbys(model, 2, 1, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let mut routed = Produced::default();

    let split = events.len() / 2;
    send_events(&mut client, &events[..split]);
    client.flush().expect("barrier");
    let (s1, c1) = drain_counted(&mut client, &mut routed);
    backends.remove(0).shutdown();
    send_events(&mut client, &events[split..]);
    client.flush().expect("flush rides out the failover");
    let (s2, c2) = drain_counted(&mut client, &mut routed);

    assert_bit_identical(&routed, &reference);
    assert_eq!(s1 + s2, reference.scores.len(), "every score exactly once");
    assert_eq!(c1 + c2, trips.len(), "every completion exactly once");
    assert_eq!(router.stats().failovers, 1);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// The drain/handoff acceptance test: migrate a partition between two
/// *running* backends mid-stream (3 backends + 1 standby), then rotate a
/// second partition onto the backend the first handoff freed — producers
/// keep streaming throughout and the full response stream stays
/// bit-identical to an uninterrupted in-process run.
#[test]
fn live_handoff_between_running_backends_is_invisible_to_producers() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    let (backends, router) = spawn_fleet_with_standbys(model, 3, 1, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let mut routed = Produced::default();

    let (a, b) = (events.len() / 3, events.len() * 2 / 3);
    send_events(&mut client, &events[..a]);
    // The flush makes the live-session population deterministic (the
    // topology gate quiesces frames in flight through the router, but
    // not bytes still unread on the front socket).
    client.flush().expect("barrier");
    let moved = router.handoff(1).expect("handoff partition 1 to the standby");
    assert!(moved.sessions_moved > 0, "live sessions travelled");
    assert_eq!(moved.epoch, 1);

    send_events(&mut client, &events[a..b]);
    client.flush().expect("barrier");
    // Rotate again: the backend freed by the first handoff is the pool
    // now, so a second handoff (of another partition) must succeed.
    let moved = router.handoff(0).expect("handoff partition 0 onto the freed backend");
    assert!(moved.sessions_moved > 0);
    assert_eq!(moved.epoch, 2);

    send_events(&mut client, &events[b..]);
    client.flush().expect("barrier");
    drain(&mut client, &mut routed);

    assert_bit_identical(&routed, &reference);
    let stats = router.stats();
    assert_eq!(stats.partition_epoch, 2);
    assert_eq!(stats.standbys_available, 1, "handoffs rotate, they do not consume");
    assert!(router.metrics().counter("router.handoff_sessions").unwrap_or(0) > 0);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// The rebalance acceptance test: shrink a 3-partition fleet onto 2
/// backends mid-stream. Every live session is drained, merged, re-split
/// with the same pure partitioner that routes future events, and
/// installed — so scoring continues bit-identically on the new topology
/// and the freed backend joins the standby pool.
#[test]
fn rebalance_shrinks_the_fleet_mid_stream_bit_identically() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    let (backends, router) = spawn_fleet_with_standbys(model, 3, 1, cfg);
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let mut routed = Produced::default();

    let split = events.len() / 2;
    send_events(&mut client, &events[..split]);
    client.flush().expect("barrier");
    assert_eq!(router.num_backends(), 3);
    let moved = router.rebalance(2).expect("shrink 3 partitions onto 2 backends");
    assert!(moved.sessions_moved > 0, "live sessions re-partitioned");
    assert_eq!(router.num_backends(), 2);

    send_events(&mut client, &events[split..]);
    client.flush().expect("barrier");
    drain(&mut client, &mut routed);

    assert_bit_identical(&routed, &reference);
    assert_eq!(
        router.stats().standbys_available,
        2,
        "the freed backend joined the untouched standby"
    );
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// Typed refusals of the admin surface: impossible topologies and an
/// empty standby pool fail with structured errors (never hangs, never
/// partial flips), and availability-tier admin frames arriving at the
/// *front door* are rejected typed instead of being misrouted.
#[test]
fn admin_surface_fails_typed_on_impossible_requests() {
    let (_, model) = trained();
    let cfg = FleetConfig { num_shards: 1, ..FleetConfig::default() };
    let (backends, router) = spawn_fleet(model, 2, cfg);

    match router.handoff(7) {
        Err(RouterAdminError::NoSuchPartition { partition: 7, partitions: 2 }) => {}
        other => panic!("expected NoSuchPartition, got {other:?}"),
    }
    match router.handoff(0) {
        Err(RouterAdminError::NoStandby) => {}
        other => panic!("expected NoStandby (no pool), got {other:?}"),
    }
    match router.rebalance(0) {
        Err(RouterAdminError::InvalidTopology(_)) => {}
        other => panic!("expected InvalidTopology, got {other:?}"),
    }
    match router.rebalance(3) {
        Err(RouterAdminError::NoStandby) => {}
        other => panic!("expected NoStandby (cannot grow past the pool), got {other:?}"),
    }
    assert_eq!(router.stats().partition_epoch, 0, "failed admin ops never flip the map");

    // Front-door rejection of point-to-point admin frames.
    let mut client = Client::connect(router.local_addr()).expect("connect");
    let rejected = |err: ClientError| match err {
        ClientError::Server { code: ErrorCode::Rejected, trip: None, .. } => {}
        other => panic!("expected typed front-door rejection, got {other:?}"),
    };
    rejected(client.delta().expect_err("delta is point-to-point"));
    rejected(client.drain().expect_err("drain is point-to-point"));
    let empty =
        causaltad_suite::serve::image_to_bytes(&causaltad_suite::serve::FleetImage::default());
    rejected(client.install(empty).expect_err("install is point-to-point"));
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

/// The barrier-under-membership-change regression guard (with a standby
/// this time): flush barriers hammered across a backend kill must all
/// resolve — served before the kill, restaged onto the promoted standby,
/// or failed typed in the narrow staging race — and once the failover
/// completes, every subsequent barrier must succeed against the new map.
#[test]
fn barriers_across_a_failover_wait_for_the_new_map_or_fail_typed() {
    let (_, model) = trained();
    let cfg = FleetConfig { num_shards: 1, ..FleetConfig::default() };
    let (mut backends, router) = spawn_fleet_with_standbys(model, 2, 1, cfg);
    let mut client = Client::connect(router.local_addr())
        .expect("connect")
        .with_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout set");

    let victim = backends.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        victim.shutdown();
    });
    let mut served = 0usize;
    let mut failed = 0usize;
    for _ in 0..200 {
        match client.flush() {
            Ok(_) => served += 1,
            Err(ClientError::Server { .. }) => failed += 1,
            Err(ClientError::Timeout) => {
                panic!("flush hung across the failover (after {served} ok, {failed} failed)")
            }
            Err(other) => panic!("unexpected flush failure: {other}"),
        }
    }
    killer.join().expect("killer thread");
    assert!(served > 0, "barriers kept being served across the failover");

    // Deterministic tail: once the promotion is visible, barriers are
    // all-success again — over both mapped backends.
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.stats().failovers != 1 {
        assert!(Instant::now() < deadline, "failover never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    for _ in 0..50 {
        client.flush().expect("post-failover barriers always succeed");
    }
    assert_eq!(router.stats().standbys_available, 0);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}
