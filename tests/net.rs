//! Loopback integration for the `tad-net` front-end: scores fed over TCP
//! are **bit-identical** to in-process `FleetEngine` ingest (including
//! across a snapshot served over the wire and restored into a fresh
//! server), backpressure accounting is exact, and hostile bytes on a live
//! socket are answered with a typed error and a clean hang-up — never a
//! wedged or crashed server.
//!
//! Bit-exactness holds regardless of how events land in micro-batches
//! because `CausalTad::push_batch` is bit-identical to sequential
//! `push_state` for every cohort composition — so two engines fed the
//! same per-trip event order produce identical f64 score bits even though
//! their timing-dependent batch compositions differ.

mod common;

use std::sync::Arc;

use causaltad_suite::net::{Client, ClientError, ErrorCode, NetServer, Response};
use causaltad_suite::serve::{image_from_bytes, Completion, Event, FleetConfig};
use causaltad_suite::trajsim::Trajectory;
use common::{
    assert_bit_identical, drain, in_process, interleave, send_events, trained, trip_of, Produced,
};

#[test]
fn network_scores_match_in_process_ingest_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());
    assert_eq!(reference.finals.len(), trips.len());

    let server =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    send_events(&mut client, &events);
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, trips.len() as u64);
    assert_eq!(stats.rejected, 0);

    let mut network = Produced::default();
    drain(&mut client, &mut network);
    assert_bit_identical(&network, &reference);

    // Each trip produced exactly one score per segment, in order.
    for (id, t) in trips.iter().enumerate() {
        for seq in 0..t.len() as u32 {
            assert!(network.scores.contains_key(&(id as u64, seq)), "trip {id} seq {seq}");
        }
    }

    let net_stats = server.net_stats();
    assert_eq!(net_stats.responses_dropped, 0);
    assert_eq!(net_stats.connections_accepted, 1);
    server.shutdown();
}

/// Multi-connection ingest: several concurrent clients streaming disjoint
/// trips each receive exactly their own trips' responses — per-trip
/// response routing never cross-delivers — and the union of what they
/// received is still bit-identical to in-process ingest.
#[test]
fn concurrent_clients_never_cross_deliver_responses() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(9).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());

    let server =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    const CLIENTS: u64 = 3;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let own: Vec<Event> =
                events.iter().copied().filter(|ev| trip_of(ev) % CLIENTS == c).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                send_events(&mut client, &own);
                client.flush().expect("barrier");
                let mut got = Produced::default();
                drain(&mut client, &mut got);
                got
            })
        })
        .collect();
    let mut network = Produced::default();
    for (c, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        for &(id, _) in got.scores.keys() {
            assert_eq!(id % CLIENTS, c as u64, "score cross-delivered to client {c}");
        }
        for &id in got.finals.keys() {
            assert_eq!(id % CLIENTS, c as u64, "completion cross-delivered to client {c}");
        }
        network.scores.extend(got.scores);
        network.finals.extend(got.finals);
    }
    assert_bit_identical(&network, &reference);
    let net_stats = server.net_stats();
    assert_eq!(net_stats.connections_accepted, CLIENTS);
    assert_eq!(net_stats.responses_dropped, 0);
    server.shutdown();
}

/// The read-timeout regression guard: a server that accepts and then
/// never replies must not hang the blocking client forever — with a
/// configured read timeout, the barrier fails promptly with the typed
/// [`ClientError::Timeout`].
#[test]
fn read_timeout_turns_a_dead_server_into_a_typed_error() {
    use std::time::{Duration, Instant};

    // A "server" that accepts the connection, then goes silent while
    // keeping the socket open (no EOF, no reply — the pathological case a
    // timeout exists for; a *closed* socket already surfaces as
    // `Disconnected`).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let hold = std::thread::spawn(move || {
        let conn = listener.accept().ok();
        let _ = release_rx.recv(); // hold the socket open, silently
        drop(conn);
    });

    let mut client = Client::connect(addr)
        .expect("connect")
        .with_read_timeout(Some(Duration::from_millis(200)))
        .expect("socket accepts a read timeout");
    client.trip_start(1, 0, 1, 0).expect("write");
    let started = Instant::now();
    match client.flush() {
        Err(ClientError::Timeout) => {}
        other => panic!("expected ClientError::Timeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(5), "the timeout must fire promptly, not hang");
    release_tx.send(()).expect("release the holder");
    hold.join().expect("holder thread");
}

/// The remote-warm-restart acceptance test: stream half the fleet into
/// server A over TCP, capture a snapshot **over the wire**, kill A,
/// restore the blob into a fresh server B, finish the stream there, and
/// require every per-segment and final score (across both phases) to be
/// bit-identical to one uninterrupted in-process engine.
#[test]
fn snapshot_served_over_wire_restores_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    let split = trips.len() + (events.len() - trips.len()) * 2 / 5;
    let cfg = || FleetConfig { num_shards: 2, max_batch: 32, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg());

    let mut network = Produced::default();

    // Phase A: half the traffic, then a snapshot over the wire.
    let server_a = NetServer::builder(Arc::clone(model))
        .fleet_config(cfg())
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect");
    send_events(&mut client_a, &events[..split]);
    client_a.flush().expect("barrier");
    let blob = client_a.snapshot().expect("snapshot over the wire");
    drain(&mut client_a, &mut network);
    drop(client_a);
    server_a.shutdown(); // the "crash": A's live sessions are gone

    // Phase B: restore the wire-served blob into a fresh server (different
    // shard count), reconnect, finish the stream.
    let image = image_from_bytes(blob).expect("blob decodes");
    let restored_count = image.sessions.len();
    assert!(restored_count > 0, "capture point should leave sessions in flight");
    let server_b = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig { num_shards: 3, max_batch: 32, ..FleetConfig::default() })
        .resume(image)
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect");
    send_events(&mut client_b, &events[split..]);
    let stats = client_b.flush().expect("barrier");
    assert_eq!(stats.sessions_restored, restored_count as u64);
    drain(&mut client_b, &mut network);

    assert_bit_identical(&network, &reference);
    assert_eq!(server_b.net_stats().responses_dropped, 0);
    server_b.shutdown();
}

/// Backpressure accounting is exact: with a tiny ingest queue, every
/// segment either produces a score or an explicit `Backpressure` reply —
/// nothing is silently buffered or lost.
#[test]
fn backpressure_replies_account_for_every_event() {
    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let server = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig {
            num_shards: 1,
            queue_capacity: 8,
            max_batch: 4,
            ..FleetConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    const BURST: usize = 2000;
    for _ in 0..BURST {
        client.segment(1, t.segments[0].0).expect("write");
    }
    client.flush().expect("barrier");
    // The queue is empty after the barrier, so the end cannot bounce.
    client.trip_end(1).expect("write");
    client.flush().expect("barrier");

    let mut scores = 0usize;
    let mut bounced = 0usize;
    let mut completed = None;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(_) => scores += 1,
            Response::Error { code: ErrorCode::Backpressure, trip: Some(1), .. } => bounced += 1,
            Response::TripComplete(tc) => completed = Some(tc),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(scores + bounced, BURST, "every segment scored or bounced");
    let completed = completed.expect("trip completed");
    assert_eq!(completed.completion, Completion::Ended);
    assert_eq!(completed.segments(), scores, "engine scored exactly the accepted events");
    // Accounting only holds if no response was dropped server-side.
    let net_stats = server.net_stats();
    assert_eq!(net_stats.responses_dropped, 0);
    // Every bounce was counted by the observability layer too.
    assert_eq!(net_stats.backpressure_replies, bounced as u64);
    server.shutdown();
}

/// Events naming out-of-vocabulary segments get a typed `Rejected` reply
/// (the engine would drop them silently), and — the regression this
/// guards — a rejected `TripStart` does not strand its trip id: the same
/// id can start validly afterwards on the same connection.
#[test]
fn out_of_vocab_events_get_typed_rejects_without_stranding_trip_ids() {
    let (city, model) = trained();
    let vocab = model.vocab() as u32;
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let server = NetServer::builder(Arc::clone(model)).bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Bad SD endpoint: typed reject, id not claimed.
    client.trip_start(5, vocab + 7, sd.dest.0, t.time_slot).expect("write");
    client.flush().expect("barrier");
    match client.try_recv() {
        Some(Response::Error { code: ErrorCode::Rejected, trip: Some(5), .. }) => {}
        other => panic!("expected Rejected for trip 5, got {other:?}"),
    }

    // The same id now starts validly; an out-of-vocab segment mid-trip is
    // rejected without killing the session.
    client.trip_start(5, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    client.segment(5, t.segments[0].0).expect("write");
    client.segment(5, vocab + 1).expect("write");
    client.segment(5, t.segments[1].0).expect("write");
    client.trip_end(5).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);

    let mut scores = 0;
    let mut rejects = 0;
    let mut completed = None;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(_) => scores += 1,
            Response::Error { code: ErrorCode::Rejected, trip: Some(5), .. } => rejects += 1,
            Response::TripComplete(tc) => completed = Some(tc),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((scores, rejects), (2, 1), "two scored segments, one typed reject");
    let completed = completed.expect("trip completed");
    assert_eq!(completed.completion, Completion::Ended);
    assert_eq!(completed.segments(), 2);
    server.shutdown();
}

/// The cross-connection duplicate-`TripStart` regression. A trip can be
/// live in the engine while *unclaimed* on the server (a warm restart
/// restores the session, and no `TripStart` ever arrives to claim it).
/// A second producer starting that id used to slip past the accept-time
/// claim check, get silently rejected by the engine, and leave its stale
/// claim stealing the true owner's score route. Now the engine's
/// quarantine classification reaches the net layer: the offender gets the
/// same typed `Rejected` reply an accept-time duplicate gets, its claim
/// is released, and the owner's stream is unperturbed — bit-identical to
/// an uninterrupted in-process run.
#[test]
fn duplicate_trip_start_across_connections_is_rejected_without_stealing_the_route() {
    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let split = t.len() / 2;
    let cfg = || FleetConfig { num_shards: 2, ..FleetConfig::default() };

    // Reference: the whole trip through one uninterrupted engine.
    let mut events = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    events.extend(t.segments.iter().map(|seg| Event::Segment { id: 1, seg: seg.0 }));
    events.push(Event::TripEnd { id: 1 });
    let reference = in_process(model, &events, cfg());

    // Phase A: the owner streams half the trip, snapshots, server dies.
    let server_a = NetServer::builder(Arc::clone(model))
        .fleet_config(cfg())
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut owner = Client::connect(server_a.local_addr()).expect("connect");
    owner.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    for seg in &t.segments[..split] {
        owner.segment(1, seg.0).expect("write");
    }
    owner.flush().expect("barrier");
    let blob = owner.snapshot().expect("snapshot over the wire");
    let mut produced = Produced::default();
    drain(&mut owner, &mut produced);
    drop(owner);
    server_a.shutdown();

    // Phase B: warm restart — trip 1 is live in the engine, claimed by
    // nobody. An impostor connection starts it *before* the owner
    // re-attaches.
    let image = image_from_bytes(blob).expect("blob decodes");
    let server_b = NetServer::builder(Arc::clone(model))
        .fleet_config(cfg())
        .resume(image)
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut impostor = Client::connect(server_b.local_addr()).expect("connect");
    impostor.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    impostor.flush().expect("barrier");
    match impostor.try_recv() {
        Some(Response::Error { code: ErrorCode::Rejected, trip: Some(1), .. }) => {}
        other => panic!("impostor expected a typed Rejected for trip 1, got {other:?}"),
    }
    assert_eq!(impostor.try_recv(), None, "nothing else may route to the impostor yet");

    // The owner re-attaches (no TripStart — the session is live) and
    // finishes the trip. Every remaining score must route to it.
    let mut owner = Client::connect(server_b.local_addr()).expect("connect");
    for seg in &t.segments[split..] {
        owner.segment(1, seg.0).expect("write");
    }
    owner.trip_end(1).expect("write");
    let stats = owner.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);
    drain(&mut owner, &mut produced);
    assert_bit_identical(&produced, &reference);

    // And still nothing leaked to the impostor.
    impostor.flush().expect("barrier");
    assert_eq!(impostor.try_recv(), None, "the owner's stream leaked to the impostor");
    assert_eq!(server_b.net_stats().responses_dropped, 0);
    server_b.shutdown();
}

/// Ingest sanitization end-to-end over the wire: a server configured with
/// a dedup window scores a duplicated stream bit-identically to the clean
/// trip, and every drop is surfaced to the producer as a typed
/// [`Response::PolicyNotice`] frame (and counted in the wire metrics).
#[test]
fn policy_notices_surface_sanitization_over_the_wire() {
    use causaltad_suite::serve::{PolicyAction, StreamPolicy};

    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();

    // Reference: the clean trip through an unpoliced in-process engine.
    let mut clean = vec![Event::TripStart {
        id: 1,
        source: sd.source.0,
        dest: sd.dest.0,
        time_slot: t.time_slot,
    }];
    clean.extend(t.segments.iter().map(|seg| Event::Segment { id: 1, seg: seg.0 }));
    clean.push(Event::TripEnd { id: 1 });
    let reference = in_process(model, &clean, FleetConfig::default());

    let server = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig {
            policy: StreamPolicy { dedup_window: 2, ..StreamPolicy::default() },
            ..FleetConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    for seg in &t.segments {
        // At-least-once transport: every segment arrives twice.
        client.segment(1, seg.0).expect("write");
        client.segment(1, seg.0).expect("write");
    }
    client.trip_end(1).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);

    let mut produced = Produced::default();
    let mut notices = Vec::new();
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(u) => {
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::PolicyNotice { id, action, seg } => notices.push((id, action, seg)),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_bit_identical(&produced, &reference);
    assert_eq!(notices.len(), t.len(), "one notice per duplicated segment");
    for (i, &(id, action, seg)) in notices.iter().enumerate() {
        assert_eq!(id, 1);
        assert_eq!(action, PolicyAction::DedupDropped);
        assert_eq!(seg, Some(t.segments[i].0), "notices arrive in stream order");
    }
    let metrics = client.metrics().expect("metrics over the wire");
    assert_eq!(metrics.counter("serve.dedup_dropped"), Some(t.len() as u64));
    assert_eq!(server.net_stats().responses_dropped, 0);
    server.shutdown();
}

/// Hostile bytes on a live socket: the server answers with a typed
/// `BadFrame` error, hangs up that connection, and keeps serving others.
#[test]
fn hostile_bytes_get_a_typed_error_and_a_clean_hangup() {
    use causaltad_suite::net::{read_response, RecvError, DEFAULT_MAX_FRAME};
    use std::io::Write;

    let (city, model) = trained();
    let server = NetServer::builder(Arc::clone(model)).bind("127.0.0.1:0").expect("bind");

    // Pure garbage: bad magic.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(&[0xDE; 64]).expect("write garbage");
    raw.flush().expect("flush");
    match read_response(&mut raw, DEFAULT_MAX_FRAME).expect("server replies before hangup") {
        Some(Response::Error { code: ErrorCode::BadFrame, .. }) => {}
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    // The server hangs up after a framing error.
    assert!(matches!(read_response(&mut raw, DEFAULT_MAX_FRAME), Ok(None) | Err(RecvError::Io(_))));

    // A crafted length prefix far beyond the server's cap: refused without
    // allocation, same typed reply.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(b"TADN");
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&u64::MAX.to_le_bytes());
    raw.write_all(&frame).expect("write header");
    raw.flush().expect("flush");
    match read_response(&mut raw, DEFAULT_MAX_FRAME).expect("server replies before hangup") {
        Some(Response::Error { code: ErrorCode::BadFrame, detail, .. }) => {
            assert!(detail.contains("exceeds"), "detail: {detail}");
        }
        other => panic!("expected BadFrame error, got {other:?}"),
    }

    // The server is still healthy: a well-behaved client works.
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.trip_start(9, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    client.segment(9, t.segments[0].0).expect("write");
    client.trip_end(9).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);
    // Both hostile connections were counted as malformed, the healthy one
    // was not.
    assert_eq!(server.net_stats().malformed_frames, 2);
    server.shutdown();
}

/// Observability end-to-end on a single server: a `MetricsRequest` over
/// the wire returns a snapshot **bit-identical** (struct equality and
/// re-encoded bytes) to the server's in-process registry at a quiesced
/// point, covering both the serve tier (`serve.*`) and the net tier
/// (`net.*`) — and the per-connection frame counters account for every
/// frame that crossed the socket.
#[test]
fn wire_metrics_match_in_process_registry_and_frame_counters_add_up() {
    use causaltad_suite::metrics::snapshot_to_bytes;
    use std::time::{Duration, Instant};

    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let server = NetServer::builder(Arc::clone(model)).bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let n = t.segments.len() as u64;
    client.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    for seg in &t.segments {
        client.segment(1, seg.0).expect("write");
    }
    client.trip_end(1).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);

    let wire = client.metrics().expect("metrics over the wire");

    // Quiesced (flush barrier passed, no other traffic): the in-process
    // registry must be the same snapshot, down to the encoded bytes.
    let local = server.metrics();
    assert_eq!(wire, local, "wire metrics must equal the in-process registry");
    assert_eq!(snapshot_to_bytes(&wire), snapshot_to_bytes(&local));

    // The shared registry covers both tiers: one latency sample per scored
    // segment on the serve side...
    let lat = wire.histogram("serve.score_latency_ns").expect("serve histogram");
    assert_eq!(lat.count, n, "one score-latency sample per segment");
    // ...and one decode sample per frame on the net side. The decode of
    // the MetricsRequest itself is recorded *before* dispatch, so the
    // frame that asked the question is already in the answer.
    let decode = wire.histogram("net.frame_decode_ns").expect("net histogram");
    assert_eq!(decode.count, n + 4, "start + segments + end + flush + metrics");
    // The queue-depth gauge is back to zero once the barrier drained it.
    assert_eq!(wire.gauge("serve.ingest_inflight"), Some(0));

    // Per-connection counters: every inbound frame accounted, nothing
    // malformed, nothing bounced.
    let conns = server.connection_stats();
    assert_eq!(conns.len(), 1);
    assert_eq!(conns[0].frames_in, n + 4);
    assert_eq!(conns[0].malformed_frames, 0);
    assert_eq!(conns[0].backpressure_replies, 0);
    // frames_out is bumped by the writer thread *after* the socket write,
    // so poll briefly: n scores + TripComplete + Stats + Metrics.
    let expect_out = n + 3;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let out = server.connection_stats()[0].frames_out;
        if out == expect_out {
            break;
        }
        assert!(Instant::now() < deadline, "frames_out stuck at {out}, want {expect_out}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Server-lifetime totals mirror the single connection.
    let totals = server.net_stats();
    assert_eq!(totals.frames_in, n + 4);
    assert_eq!(totals.frames_out, expect_out);
    assert_eq!(totals.malformed_frames, 0);
    assert_eq!(totals.backpressure_replies, 0);
    server.shutdown();
}

/// Bounded reconnect, failure side: against an address that accepts and
/// immediately drops every connection, a retry-enabled client spends
/// exactly its configured attempt budget — sleeping its jittered backoff
/// between dials — and then fails with the typed
/// [`ClientError::Retrying`], never an unbounded dial loop.
#[test]
fn client_retry_budget_is_bounded_and_typed() {
    use causaltad_suite::net::RetryPolicy;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stopped = Arc::clone(&stop);
    let dropper = std::thread::spawn(move || {
        // Accept-and-drop: every connection dies before a byte is served.
        while !stopped.load(Ordering::Relaxed) {
            drop(listener.accept());
        }
    });

    let policy = RetryPolicy {
        max_reconnects: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
    };
    let mut client = Client::connect(addr).expect("first dial is accepted").with_retry(policy);
    client.trip_start(1, 0, 1, 0).expect("write lands in the OS buffer");
    match client.flush() {
        Err(ClientError::Retrying { attempts, last }) => {
            assert_eq!(attempts, 3, "exactly the configured budget");
            assert!(
                !matches!(*last, ClientError::Server { .. }),
                "only transport failures are retried, got {last:?}"
            );
        }
        other => panic!("expected ClientError::Retrying, got {other:?}"),
    }
    stop.store(true, Ordering::Relaxed);
    // Unblock the accept loop with one throwaway dial.
    drop(std::net::TcpStream::connect(addr));
    dropper.join().expect("dropper thread");
}

/// Bounded reconnect, recovery side: the first connection through a flaky
/// front dies mid-call, the client silently redials inside the same call,
/// and the whole trip then streams through the fresh connection with
/// scores bit-identical to in-process ingest — the producer never sees
/// the outage.
#[test]
fn client_reconnects_through_an_outage_and_scores_stay_bit_identical() {
    use causaltad_suite::net::RetryPolicy;
    use std::net::{Shutdown, TcpListener, TcpStream};
    use std::time::Duration;

    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(3).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    let server =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let target = server.local_addr();

    // A flaky front: the first connection is dropped on the floor (the
    // outage), every later one is pumped byte-for-byte to the real server.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let front = listener.local_addr().expect("addr");
    let proxy = std::thread::spawn(move || {
        drop(listener.accept());
        let Ok((client_sock, _)) = listener.accept() else { return };
        let server_sock = TcpStream::connect(target).expect("dial real server");
        let up = {
            let (mut r, mut w) =
                (client_sock.try_clone().expect("clone"), server_sock.try_clone().expect("clone"));
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut r, &mut w);
                let _ = w.shutdown(Shutdown::Write);
            })
        };
        let (mut r, mut w) = (server_sock, client_sock);
        let _ = std::io::copy(&mut r, &mut w);
        let _ = w.shutdown(Shutdown::Write);
        up.join().expect("upstream pump");
    });

    let mut client = Client::connect(front).expect("first dial").with_retry(RetryPolicy {
        max_reconnects: 5,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(8),
    });
    // The dead first connection surfaces inside this call; the client
    // redials and the barrier lands on the real server.
    client.flush().expect("flush survives the outage via reconnect");

    send_events(&mut client, &events);
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, trips.len() as u64);
    let mut produced = Produced::default();
    drain(&mut client, &mut produced);
    assert_bit_identical(&produced, &reference);

    drop(client); // EOF ends the proxy pumps
    proxy.join().expect("proxy thread");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Deterministic event-loop batteries: the production `EventLoop` driven by
// the scripted readiness harness (`tests/common/script.rs`) — exact partial
// reads, short writes, pause/resume schedules that real sockets cannot be
// made to produce on demand — plus the 256-connection loopback sweep.
// ---------------------------------------------------------------------------

use causaltad_suite::net::{
    request_to_bytes, response_from_bytes, EventLoop, FrameAssembler, IngestCore, NetConfig,
    Request, DEFAULT_MAX_FRAME,
};
use common::script::{scripted_conn, ScriptedSource, Tick};

/// The wire request a fleet event becomes.
fn event_request(ev: &Event) -> Request {
    match *ev {
        Event::TripStart { id, source, dest, time_slot } => {
            Request::TripStart { id, source, dest, time_slot }
        }
        Event::Segment { id, seg } => Request::Segment { id, seg },
        Event::TripEnd { id } => Request::TripEnd { id },
    }
}

/// One encoded request frame.
fn frame_bytes(ev: &Event) -> Vec<u8> {
    request_to_bytes(&event_request(ev)).to_vec()
}

/// Splits a scripted connection's written bytes back into decoded
/// response frames, refusing trailing garbage or partial frames.
fn parse_written(bytes: &[u8]) -> Vec<Response> {
    let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME);
    asm.feed(bytes);
    let mut out = Vec::new();
    while let Some(frame) = asm.next_frame().expect("written stream frames cleanly") {
        out.push(response_from_bytes(frame).expect("written frame decodes"));
    }
    assert!(!asm.has_partial(), "trailing partial frame in written stream");
    out
}

/// Sorts decoded responses into the bit-level `Produced` record, counting
/// `Stats` barriers and typed errors along the way.
fn sort_responses(responses: Vec<Response>) -> (Produced, usize, Vec<(ErrorCode, Option<u64>)>) {
    let mut produced = Produced::default();
    let mut stats = 0usize;
    let mut errors = Vec::new();
    for resp in responses {
        match resp {
            Response::Score(u) => {
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::Stats(_) => stats += 1,
            Response::Error { code, trip, .. } => errors.push((code, trip)),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    (produced, stats, errors)
}

/// The tentpole property, proven deterministically: two connections whose
/// frames arrive split at awkward byte boundaries across a scripted
/// readiness schedule (every tick completes one frame per connection and
/// leaves a partial frame buffered) coalesce into **cross-connection
/// cohorts** — observable in the `net.cohort_conns` histogram — and the
/// scores written back are bit-identical to in-process ingest, with no
/// cross-connection delivery.
#[test]
fn scripted_event_loop_coalesces_cross_connection_cohorts_bit_identically() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(2).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    let conn_frames: Vec<Vec<Vec<u8>>> = (0..2u64)
        .map(|c| events.iter().filter(|ev| trip_of(ev) == c).map(frame_bytes).collect())
        .collect();
    let streams: Vec<Vec<u8>> = conn_frames.iter().map(|f| f.concat()).collect();
    // Tick boundaries sit 5 bytes past each frame boundary: every tick
    // completes exactly one frame per connection and buffers 5 bytes of
    // the next — partial-frame reassembly on every single tick.
    let bounds: Vec<Vec<usize>> = conn_frames
        .iter()
        .map(|frames| {
            let total: usize = frames.iter().map(Vec::len).sum();
            let mut cum = 0usize;
            frames
                .iter()
                .map(|f| {
                    cum += f.len();
                    (cum + 5).min(total)
                })
                .collect()
        })
        .collect();

    let (io0, h0) = scripted_conn();
    let (io1, h1) = scripted_conn();
    let handles = [h0, h1];

    let mut ticks = vec![Tick::new().inject(io0).inject(io1)];
    let mut pos = [0usize; 2];
    let max_ticks = bounds.iter().map(Vec::len).max().unwrap();
    for t in 0..max_ticks {
        let mut tick = Tick::new();
        for c in 0..2 {
            if let Some(&end) = bounds[c].get(t) {
                if end > pos[c] {
                    handles[c].push_read(&streams[c][pos[c]..end]);
                    pos[c] = end;
                    tick = tick.readable(c as u64);
                }
            }
        }
        ticks.push(tick);
    }
    // Flush barrier on both connections in one final tick: the `Stats`
    // reply is queued only after every delivery above it, and the tick's
    // dirty-drain writes everything to the scripted transports.
    let flush = request_to_bytes(&Request::Flush);
    handles[0].push_read(&flush);
    handles[1].push_read(&flush);
    ticks.push(Tick::new().readable(0).readable(1));

    let core = IngestCore::build(Arc::clone(model), cfg, NetConfig::default()).expect("core");
    let source = ScriptedSource::new(ticks);
    let log = source.log_handle();
    EventLoop::new(Arc::clone(&core), source).run();

    let mut union = Produced::default();
    let mut total_frames_in = 0u64;
    for (c, handle) in handles.iter().enumerate() {
        let (produced, stats, errors) = sort_responses(parse_written(&handle.take_written()));
        assert!(errors.is_empty(), "conn {c} got errors: {errors:?}");
        assert_eq!(stats, 1, "conn {c} flush barriers");
        for key in produced.scores.keys() {
            assert_eq!(key.0, c as u64, "score cross-delivered to conn {c}");
        }
        for id in produced.finals.keys() {
            assert_eq!(*id, c as u64, "completion cross-delivered to conn {c}");
        }
        union.scores.extend(produced.scores);
        union.finals.extend(produced.finals);
        total_frames_in += conn_frames[c].len() as u64 + 1;
    }
    assert_bit_identical(&union, &reference);

    // The prize: ticks where both connections contributed events were
    // submitted as one cohort spanning 2 connections.
    let snapshot = core.metrics();
    let cohort_conns = snapshot.histogram("net.cohort_conns").expect("recorded");
    assert_eq!(cohort_conns.max, 2, "no cross-connection cohort was ever formed");
    let cohort_width = snapshot.histogram("net.cohort_width").expect("recorded");
    assert!(cohort_width.max >= 2, "no multi-event cohort was ever formed");

    let ns = core.net_stats();
    assert_eq!(ns.frames_in, total_frames_in);
    assert_eq!(ns.responses_dropped, 0);
    assert_eq!(ns.malformed_frames, 0);
    assert_eq!(ns.backpressure_replies, 0);
    assert_eq!(ns.slow_consumer_pauses, 0);
    // Neither connection was ever read-paused.
    assert!(
        log.lock().unwrap().iter().all(|(_, i)| i.readable),
        "a healthy connection lost read interest"
    );
    IngestCore::finish(core);
}

/// The slow-consumer regression battery, proven deterministically: a
/// stalled reader (zero-byte write window) crosses the write high-water
/// mark, gets its reads paused (observable as an interest transition) and
/// exactly one typed `Backpressure` notice, holds only bounded
/// writer-queue memory (excess responses are counted dropped, not
/// buffered) — while a healthy connection flowing through the same loop
/// is never stalled and stays bit-identical. When the reader drains, the
/// backlog flushes and reads resume.
#[test]
fn scripted_slow_consumer_pauses_bounded_and_resumes_while_healthy_conn_flows() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(9).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());

    // Sized so the stalled firehose (8 trips, ≥48 score frames in one
    // burst) overflows both the 32-entry response queue and the 256-byte
    // write high-water, while the healthy connection's single-trip burst
    // fits the queue comfortably.
    let net = NetConfig { response_queue: 32, write_highwater: 256, ..NetConfig::default() };
    const STALLED_TRIPS: u64 = 8;
    let healthy_trip: u64 = STALLED_TRIPS;

    let (io0, h0) = scripted_conn();
    let (io1, h1) = scripted_conn();
    h0.set_write_window(0); // the stalled reader: accepts nothing

    let flush = request_to_bytes(&Request::Flush);
    let mut s0 = Vec::new();
    for ev in events.iter().filter(|ev| trip_of(ev) < STALLED_TRIPS) {
        s0.extend_from_slice(&frame_bytes(ev));
    }
    s0.extend_from_slice(&flush);
    h0.push_read(&s0);
    let mut s1 = Vec::new();
    for ev in events.iter().filter(|ev| trip_of(ev) == healthy_trip) {
        s1.extend_from_slice(&frame_bytes(ev));
    }
    s1.extend_from_slice(&flush);
    h1.push_read(&s1);

    let h0_widen = h0.clone();
    let ticks = vec![
        Tick::new().inject(io0).inject(io1),
        // Firehose all eight trips; the flush barrier queues every
        // response, the stalled transport accepts none, and the sweep
        // pauses reads.
        Tick::new().readable(0),
        // The healthy connection does a full trip + barrier while conn 0
        // sits paused.
        Tick::new().readable(1),
        // The slow reader finally drains: backlog flushes, reads resume.
        Tick::new().act(move || h0_widen.set_write_window(usize::MAX)).writable(0),
        Tick::new(),
    ];

    let core = IngestCore::build(Arc::clone(model), cfg, net).expect("core");
    let source = ScriptedSource::new(ticks);
    let log = source.log_handle();
    EventLoop::new(Arc::clone(&core), source).run();

    // The stalled connection: bounded memory, typed notice, and exactly
    // the bounded queue's worth of responses kept (bit-identical ones).
    let written0 = h0.take_written();
    assert!(written0.len() <= 4096, "writer memory unbounded: {} bytes", written0.len());
    let (got0, stats0, errors0) = sort_responses(parse_written(&written0));
    assert_eq!(stats0, 1, "the flush barrier reply still arrives");
    assert_eq!(
        errors0,
        vec![(ErrorCode::Backpressure, None)],
        "exactly one typed slow-consumer notice"
    );
    assert_eq!(
        got0.scores.len() + got0.finals.len(),
        32,
        "exactly the bounded queue's responses survive"
    );
    for (key, bits) in &got0.scores {
        assert!(key.0 < STALLED_TRIPS, "cross-delivered score at {key:?}");
        assert_eq!(reference.scores.get(key), Some(bits), "kept score bits at {key:?}");
    }
    for (id, fin) in &got0.finals {
        assert_eq!(reference.finals.get(id), Some(fin), "kept final bits for trip {id}");
    }

    // The healthy connection: complete and bit-identical throughout.
    let (got1, stats1, errors1) = sort_responses(parse_written(&h1.take_written()));
    assert_eq!(stats1, 1);
    assert!(errors1.is_empty(), "healthy conn got errors: {errors1:?}");
    let healthy_scores = reference.scores.iter().filter(|((id, _), _)| *id == healthy_trip).count();
    assert_eq!(got1.scores.len(), healthy_scores, "healthy conn missed responses");
    for (key, bits) in &got1.scores {
        assert_eq!(reference.scores.get(key), Some(bits), "score bits at {key:?}");
    }
    assert_eq!(got1.finals.get(&healthy_trip), reference.finals.get(&healthy_trip), "final");

    let ns = core.net_stats();
    assert_eq!(ns.slow_consumer_pauses, 1, "exactly one pause episode");
    assert!(ns.responses_dropped > 0, "excess responses must be dropped, not buffered");

    // Interest transitions: pause (readable off, write backlog on), then
    // resume (readable back on, backlog gone).
    let log = log.lock().unwrap();
    let pause = log
        .iter()
        .position(|&(k, i)| k == 0 && !i.readable && i.writable)
        .expect("pause transition logged");
    assert!(
        log[pause..].iter().any(|&(k, i)| k == 0 && i.readable && !i.writable),
        "resume transition must follow the pause"
    );
    drop(log);
    IngestCore::finish(core);
}

/// The connection-scaling equivalence sweep on real sockets: 256
/// concurrent loopback connections, each owning one live trip, with
/// events interleaved round-robin across all of them — scores come back
/// bit-identical to in-process ingest, nothing is cross-delivered, and
/// nothing is dropped.
#[test]
fn loopback_256_connections_score_bit_identically_with_no_cross_delivery() {
    use std::time::Duration;

    let (city, model) = trained();
    let base: Vec<&Trajectory> = city.data.test_id.iter().collect();
    const CONNS: usize = 256;
    // 256 live trips: trip id c rides connection c (trajectories reused
    // cyclically; the engine keys routing and state on the id).
    let trips: Vec<&Trajectory> = (0..CONNS).map(|c| base[c % base.len()]).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &events, cfg.clone());
    assert_eq!(reference.finals.len(), CONNS);

    let server =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let mut clients: Vec<Client> = (0..CONNS)
        .map(|_| {
            Client::connect(server.local_addr())
                .expect("connect")
                .with_write_timeout(Some(Duration::from_secs(30)))
                .expect("write timeout")
        })
        .collect();
    for ev in &events {
        send_events(&mut clients[trip_of(ev) as usize], std::slice::from_ref(ev));
    }
    for client in &mut clients {
        client.flush().expect("barrier");
    }

    let mut union = Produced::default();
    for (c, client) in clients.iter_mut().enumerate() {
        let mut got = Produced::default();
        drain(client, &mut got);
        for key in got.scores.keys() {
            assert_eq!(key.0, c as u64, "score cross-delivered to connection {c}");
        }
        for id in got.finals.keys() {
            assert_eq!(*id, c as u64, "completion cross-delivered to connection {c}");
        }
        union.scores.extend(got.scores);
        union.finals.extend(got.finals);
    }
    assert_bit_identical(&union, &reference);

    let ns = server.net_stats();
    assert_eq!(ns.connections_accepted, CONNS as u64);
    assert_eq!(ns.responses_dropped, 0);
    assert_eq!(ns.malformed_frames, 0);
    assert_eq!(ns.slow_consumer_pauses, 0);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Admission-control and overload-protection batteries (scripted): the
// token-bucket rate limiter, idle reaping, the connection quota, and the
// fleet-wide admission watermark — each proven against the production
// `EventLoop` with exact typed-error accounting and bit-identical scoring
// for everything admitted.
// ---------------------------------------------------------------------------

/// The complete wire stream of one trip under an explicit id: start,
/// every segment, end.
fn trip_events(id: u64, t: &Trajectory) -> Vec<Event> {
    let sd = t.sd_pair();
    let mut events =
        vec![Event::TripStart { id, source: sd.source.0, dest: sd.dest.0, time_slot: t.time_slot }];
    events.extend(t.segments.iter().map(|seg| Event::Segment { id, seg: seg.0 }));
    events.push(Event::TripEnd { id });
    events
}

/// Concatenated frame bytes for a slice of events.
fn stream_bytes(events: &[Event]) -> Vec<u8> {
    events.iter().flat_map(frame_bytes).collect()
}

/// The rate-limit battery: a connection that overdraws its token bucket
/// gets **exactly one** typed `Throttled` notice per episode (with a
/// positive `retry_after_ms` hint), its reads pause — observable as an
/// interest transition, exactly like the slow-consumer path — and after
/// the bucket refills, reads resume and the connection keeps streaming.
/// Every event decoded before the pause is admitted and scored
/// **bit-identically**; throttling delays traffic, it never corrupts it.
#[test]
fn scripted_rate_limit_throttles_once_per_episode_and_resumes_bit_identically() {
    use std::time::Duration;

    let (city, model) = trained();
    let base: Vec<&Trajectory> = city.data.test_id.iter().take(2).collect();
    let trip0 = trip_events(0, base[0]);
    let trip1 = trip_events(1, base[1]);
    let all: Vec<Event> = trip0.iter().chain(trip1.iter()).copied().collect();
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &all, cfg.clone());

    // A bucket of 2 tokens refilled at 10/s: each trip (>= 3 events)
    // overdraws it within one tick, and a ~1s pause between bursts
    // refills it back to the cap.
    let net =
        NetConfig { rate_limit_segments_per_s: 10, rate_limit_burst: 2, ..NetConfig::default() };

    let (io0, h0) = scripted_conn();
    h0.push_read(&stream_bytes(&trip0)); // tick 2: episode one
    let mut second = stream_bytes(&trip1); // tick 4: episode two + barrier
    second.extend_from_slice(&request_to_bytes(&Request::Flush));
    h0.push_read(&second);

    let ticks = vec![
        Tick::new().inject(io0),
        Tick::new().readable(0),
        // Real time passes: the bucket refills past zero and the sweep
        // ends the episode, restoring read interest.
        Tick::new().act(|| std::thread::sleep(Duration::from_millis(1100))),
        Tick::new().readable(0),
        Tick::new().act(|| std::thread::sleep(Duration::from_millis(1100))),
        Tick::new(),
    ];

    let core = IngestCore::build(Arc::clone(model), cfg, net).expect("core");
    let source = ScriptedSource::new(ticks);
    let log = source.log_handle();
    EventLoop::new(Arc::clone(&core), source).run();

    let responses = parse_written(&h0.take_written());
    // Both throttle notices carry a positive pacing hint.
    for resp in &responses {
        if let Response::Error { code, retry_after_ms, .. } = resp {
            assert_eq!(*code, ErrorCode::Throttled);
            assert!(
                retry_after_ms.is_some_and(|ms| ms > 0),
                "throttle notice must carry a positive retry_after_ms"
            );
        }
    }
    let (got, stats, errors) = sort_responses(responses);
    assert_eq!(stats, 1, "the flush barrier reply still arrives");
    assert_eq!(
        errors,
        vec![(ErrorCode::Throttled, None), (ErrorCode::Throttled, None)],
        "exactly one typed notice per throttle episode"
    );
    assert_bit_identical(&got, &reference);

    let ns = core.net_stats();
    assert_eq!(ns.throttled_replies, 2, "exactly two throttle episodes");
    assert_eq!(ns.slow_consumer_pauses, 0, "throttling is not the slow-consumer path");
    assert_eq!(ns.responses_dropped, 0);
    let snapshot = core.metrics();
    assert_eq!(snapshot.counter("net.throttled"), Some(2));

    // Interest transitions: pause (readable off) then resume, twice.
    let log = log.lock().unwrap();
    let pauses = log.iter().filter(|&&(k, i)| k == 0 && !i.readable).count();
    let resumes = log.iter().filter(|&&(k, i)| k == 0 && i.readable).count();
    assert_eq!(pauses, 2, "one read pause per episode");
    assert!(resumes >= 2, "reads must resume after each episode");
    drop(log);
    IngestCore::finish(core);
}

/// The idle-reaping battery: a connection holding a live trip is **never**
/// reaped, no matter how long it sits idle past the timeout — its claims
/// survive until the trip completes — while a connection whose trips have
/// all finished is reaped with a typed `IdleTimeout` notice *after* every
/// queued response was delivered.
#[test]
fn scripted_idle_reaping_spares_live_trips_and_notifies_finished_conns() {
    use std::time::Duration;

    let (city, model) = trained();
    let base: Vec<&Trajectory> = city.data.test_id.iter().take(2).collect();
    let trip0 = trip_events(0, base[0]);
    let trip1 = trip_events(1, base[1]);
    let all: Vec<Event> = trip0.iter().chain(trip1.iter()).copied().collect();
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &all, cfg.clone());

    // A 50ms timeout against scripted 100ms idle gaps: every sleep tick
    // pushes both connections well past the threshold, so the live-trip
    // guard is the only thing keeping conn 0 alive.
    let net = NetConfig { idle_timeout: Some(Duration::from_millis(50)), ..NetConfig::default() };
    let flush = request_to_bytes(&Request::Flush);
    let nap = || std::thread::sleep(Duration::from_millis(100));

    let (io0, h0) = scripted_conn();
    let (io1, h1) = scripted_conn();
    // Conn 0 starts its trip but holds it open (no TripEnd yet).
    let held = &trip0[..trip0.len() - 1];
    h0.push_read(&stream_bytes(held));
    // Conn 1 runs a complete trip, plus a barrier so its completion (and
    // the live-trip release) has landed before the next idle scan.
    let mut full = stream_bytes(&trip1);
    full.extend_from_slice(&flush);
    h1.push_read(&full);
    // Conn 0 finally ends its trip (with its own barrier) two scans later.
    let mut finish = stream_bytes(&trip0[trip0.len() - 1..]);
    finish.extend_from_slice(&flush);
    h0.push_read(&finish);

    let ticks = vec![
        Tick::new().inject(io0).inject(io1),
        Tick::new().readable(0).readable(1),
        // Two idle gaps pass: conn 1 (no live trips) is reaped; conn 0
        // (one live trip) survives both despite sitting idle 4x the
        // timeout.
        Tick::new().act(nap),
        Tick::new().act(nap),
        Tick::new().readable(0),
        Tick::new().act(nap),
        Tick::new(),
    ];

    let core = IngestCore::build(Arc::clone(model), cfg, net).expect("core");
    let source = ScriptedSource::new(ticks);
    EventLoop::new(Arc::clone(&core), source).run();

    let mut union = Produced::default();
    for (c, handle) in [h0, h1].iter().enumerate() {
        let responses = parse_written(&handle.take_written());
        // The reap notice is the *last* frame: everything scored was
        // delivered before the close — reaping never drops responses.
        match responses.last() {
            Some(Response::Error { code: ErrorCode::IdleTimeout, trip: None, .. }) => {}
            other => panic!("conn {c}: expected a final IdleTimeout notice, got {other:?}"),
        }
        let (got, stats, errors) = sort_responses(responses);
        assert_eq!(stats, 1, "conn {c} flush barriers");
        assert_eq!(errors, vec![(ErrorCode::IdleTimeout, None)], "conn {c} notices");
        for key in got.scores.keys() {
            assert_eq!(key.0, c as u64, "score cross-delivered to conn {c}");
        }
        union.scores.extend(got.scores);
        union.finals.extend(got.finals);
    }
    assert_bit_identical(&union, &reference);

    let ns = core.net_stats();
    assert_eq!(ns.idle_reaped, 2, "both conns reaped once their trips finished");
    assert_eq!(ns.responses_dropped, 0);
    let snapshot = core.metrics();
    assert_eq!(snapshot.counter("net.idle_reaped"), Some(2));
    IngestCore::finish(core);
}

/// The connection-quota battery: a transport over `max_connections` is
/// answered with one clean typed `ConnLimit` error — a decodable frame,
/// not a silent hangup — and never registered, while the admitted
/// connection streams bit-identically, unaffected.
#[test]
fn scripted_connection_quota_rejects_typed_not_a_hangup() {
    let (city, model) = trained();
    let trip = trip_events(0, city.data.test_id.first().expect("trips"));
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };
    let reference = in_process(model, &trip, cfg.clone());

    let net = NetConfig { max_connections: 1, ..NetConfig::default() };

    let (io0, h0) = scripted_conn();
    let (io1, h1) = scripted_conn();
    let mut stream = stream_bytes(&trip);
    stream.extend_from_slice(&request_to_bytes(&Request::Flush));
    h0.push_read(&stream);

    let ticks = vec![Tick::new().inject(io0).inject(io1), Tick::new().readable(0), Tick::new()];

    let core = IngestCore::build(Arc::clone(model), cfg, net).expect("core");
    let source = ScriptedSource::new(ticks);
    EventLoop::new(Arc::clone(&core), source).run();

    // The rejected transport got exactly one decodable typed error.
    let rejected = parse_written(&h1.take_written());
    match rejected.as_slice() {
        [Response::Error {
            code: ErrorCode::ConnLimit,
            trip: None,
            retry_after_ms: None,
            detail,
        }] => {
            assert!(detail.contains("quota"), "detail names the quota: {detail}");
        }
        other => panic!("expected exactly one ConnLimit error, got {other:?}"),
    }

    // The admitted connection is untouched: full bit-identical stream.
    let (got, stats, errors) = sort_responses(parse_written(&h0.take_written()));
    assert_eq!(stats, 1);
    assert!(errors.is_empty(), "admitted conn got errors: {errors:?}");
    assert_bit_identical(&got, &reference);

    let ns = core.net_stats();
    assert_eq!(ns.conns_rejected, 1);
    assert_eq!(ns.connections_accepted, 1, "the rejected transport was never registered");
    let snapshot = core.metrics();
    assert_eq!(snapshot.counter("net.conns_rejected"), Some(1));
    IngestCore::finish(core);
}

/// The admission-watermark battery: with the fleet at its session
/// watermark, a **new** `TripStart` (and its same-cohort events) is shed
/// with a typed `Throttled` reply carrying the engine's configured retry
/// hint — while the already-admitted trips keep scoring bit-identically.
/// Shed counts are exact on both the serve and net ledgers.
#[test]
fn scripted_admission_watermark_sheds_new_trips_while_inflight_keep_scoring() {
    use std::time::Duration;

    let (city, model) = trained();
    let base: Vec<&Trajectory> = city.data.test_id.iter().take(3).collect();
    let trip0 = trip_events(0, base[0]);
    let trip1 = trip_events(1, base[1]);
    let cfg = FleetConfig {
        num_shards: 2,
        admission_session_watermark: 2,
        admission_retry_after: Duration::from_millis(250),
        ..FleetConfig::default()
    };
    // The reference scores only what admission admits: trips 0 and 1.
    let admitted: Vec<Event> = trip0.iter().chain(trip1.iter()).copied().collect();
    let reference = in_process(model, &admitted, cfg.clone());

    let flush = request_to_bytes(&Request::Flush);
    let (io0, h0) = scripted_conn();
    // Tick 2: both trips start (admitted — the fleet was empty when the
    // cohort entered). The barrier pins active_sessions at 2 before the
    // next tick's admission check.
    let mut first = Vec::new();
    first.extend_from_slice(&frame_bytes(&trip0[0]));
    first.extend_from_slice(&frame_bytes(&trip1[0]));
    first.extend_from_slice(&flush);
    h0.push_read(&first);
    // Tick 3: at the watermark, trip 2 tries to start and stream one
    // segment — both shed — while trips 0 and 1 stream their bodies.
    let sd2 = base[2].sd_pair();
    let start2 = Event::TripStart {
        id: 2,
        source: sd2.source.0,
        dest: sd2.dest.0,
        time_slot: base[2].time_slot,
    };
    let seg2 = Event::Segment { id: 2, seg: base[2].segments[0].0 };
    let mut second = Vec::new();
    second.extend_from_slice(&frame_bytes(&start2));
    second.extend_from_slice(&frame_bytes(&seg2));
    second.extend_from_slice(&stream_bytes(&trip0[1..]));
    second.extend_from_slice(&stream_bytes(&trip1[1..]));
    second.extend_from_slice(&flush);
    h0.push_read(&second);

    let ticks = vec![
        Tick::new().inject(io0),
        Tick::new().readable(0),
        Tick::new().readable(0),
        Tick::new(),
    ];

    let core = IngestCore::build(Arc::clone(model), cfg, NetConfig::default()).expect("core");
    let source = ScriptedSource::new(ticks);
    EventLoop::new(Arc::clone(&core), source).run();

    let responses = parse_written(&h0.take_written());
    // Every shed reply names the refused trip and carries the engine's
    // configured pacing hint.
    for resp in &responses {
        if let Response::Error { code, trip, retry_after_ms, .. } = resp {
            assert_eq!(*code, ErrorCode::Throttled);
            assert_eq!(*trip, Some(2), "only trip 2 is shed");
            assert_eq!(*retry_after_ms, Some(250), "the FleetConfig retry hint rides the wire");
        }
    }
    let (got, stats, errors) = sort_responses(responses);
    assert_eq!(stats, 2, "both flush barriers answered");
    assert_eq!(
        errors,
        vec![(ErrorCode::Throttled, Some(2)), (ErrorCode::Throttled, Some(2))],
        "the shed TripStart and its same-cohort segment each get a typed reply"
    );
    assert!(
        got.scores.keys().all(|&(id, _)| id < 2) && !got.finals.contains_key(&2),
        "a shed trip must never score"
    );
    assert_bit_identical(&got, &reference);

    let snapshot = core.metrics();
    assert_eq!(snapshot.counter("serve.admission_shed"), Some(2));
    assert_eq!(snapshot.counter("net.throttled"), Some(2));
    let ns = core.net_stats();
    assert_eq!(ns.throttled_replies, 2);
    assert_eq!(ns.responses_dropped, 0);
    IngestCore::finish(core);
}
