//! Loopback integration for the `tad-net` front-end: scores fed over TCP
//! are **bit-identical** to in-process `FleetEngine` ingest (including
//! across a snapshot served over the wire and restored into a fresh
//! server), backpressure accounting is exact, and hostile bytes on a live
//! socket are answered with a typed error and a clean hang-up — never a
//! wedged or crashed server.
//!
//! Bit-exactness holds regardless of how events land in micro-batches
//! because `CausalTad::push_batch` is bit-identical to sequential
//! `push_state` for every cohort composition — so two engines fed the
//! same per-trip event order produce identical f64 score bits even though
//! their timing-dependent batch compositions differ.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use causaltad_suite::core::{CausalTad, CausalTadConfig};
use causaltad_suite::net::{Client, ErrorCode, NetServer, Response};
use causaltad_suite::serve::{
    image_from_bytes, Completion, Event, FleetConfig, FleetEngine, ScoreUpdate,
};
use causaltad_suite::trajsim::{generate_city, City, CityConfig, Trajectory};

/// One trained model shared by every test in this file (training in debug
/// mode is expensive).
fn trained() -> &'static (City, Arc<CausalTad>) {
    static SHARED: OnceLock<(City, Arc<CausalTad>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let city = generate_city(&CityConfig::test_scale(321));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 1;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    })
}

/// Round-robin interleaving of complete trip streams (all starts first,
/// then one segment per live trip per step, ends inline).
fn interleave(trips: &[&Trajectory]) -> Vec<Event> {
    let mut events = Vec::new();
    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        events.push(Event::TripStart {
            id: id as u64,
            source: sd.source.0,
            dest: sd.dest.0,
            time_slot: t.time_slot,
        });
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                events.push(Event::Segment { id: id as u64, seg: seg.0 });
            }
            if step + 1 == t.len() {
                events.push(Event::TripEnd { id: id as u64 });
            }
        }
    }
    events
}

/// Bit-level record of everything an engine produced: per-segment score
/// bits keyed by (trip, seq) and final (score bits, segment count) per
/// ended trip.
#[derive(Default)]
struct Produced {
    scores: HashMap<(u64, u32), u64>,
    finals: HashMap<u64, (u64, usize)>,
}

/// Runs `events` through an in-process engine, recording callbacks.
fn in_process(model: &Arc<CausalTad>, events: &[Event], cfg: FleetConfig) -> Produced {
    let produced = Arc::new(Mutex::new(Produced::default()));
    let score_sink = Arc::clone(&produced);
    let complete_sink = Arc::clone(&produced);
    let engine = FleetEngine::builder(Arc::clone(model))
        .config(cfg)
        .on_score(move |u: &ScoreUpdate| {
            score_sink.lock().unwrap().scores.insert((u.id, u.seq), u.score.to_bits());
        })
        .on_complete(move |o| {
            if o.completion == Completion::Ended {
                complete_sink.lock().unwrap().finals.insert(o.id, (o.score.to_bits(), o.segments));
            }
        })
        .build()
        .expect("trained model");
    for &ev in events {
        engine.submit(ev).unwrap();
    }
    engine.shutdown();
    Arc::try_unwrap(produced).ok().expect("engine gone").into_inner().unwrap()
}

/// Sends `events` through a client in order (panicking on write errors).
fn send_events(client: &mut Client, events: &[Event]) {
    for &ev in events {
        match ev {
            Event::TripStart { id, source, dest, time_slot } => {
                client.trip_start(id, source, dest, time_slot).expect("write")
            }
            Event::Segment { id, seg } => client.segment(id, seg).expect("write"),
            Event::TripEnd { id } => client.trip_end(id).expect("write"),
        }
    }
}

/// Drains a client's queued responses into `produced`, panicking on any
/// error frame.
fn drain(client: &mut Client, produced: &mut Produced) {
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(u) => {
                produced.scores.insert((u.id, u.seq), u.score.to_bits());
            }
            Response::TripComplete(tc) => {
                if tc.completion == Completion::Ended {
                    produced.finals.insert(tc.id, (tc.score.to_bits(), tc.segments()));
                }
            }
            Response::Error { code, trip, detail } => {
                panic!("unexpected error frame: {code} trip={trip:?} {detail}")
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

fn assert_bit_identical(network: &Produced, reference: &Produced) {
    assert_eq!(network.finals.len(), reference.finals.len(), "final-score count");
    for (id, reference_final) in &reference.finals {
        let network_final = network.finals.get(id).unwrap_or_else(|| panic!("trip {id} final"));
        assert_eq!(network_final, reference_final, "trip {id} final score bits");
    }
    assert_eq!(network.scores.len(), reference.scores.len(), "per-segment score count");
    for (key, bits) in &reference.scores {
        assert_eq!(network.scores.get(key), Some(bits), "score bits at {key:?}");
    }
}

#[test]
fn network_scores_match_in_process_ingest_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let events = interleave(&trips);
    let cfg = FleetConfig { num_shards: 2, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg.clone());
    assert_eq!(reference.finals.len(), trips.len());

    let server =
        NetServer::builder(Arc::clone(model)).fleet_config(cfg).bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    send_events(&mut client, &events);
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, trips.len() as u64);
    assert_eq!(stats.rejected, 0);

    let mut network = Produced::default();
    drain(&mut client, &mut network);
    assert_bit_identical(&network, &reference);

    // Each trip produced exactly one score per segment, in order.
    for (id, t) in trips.iter().enumerate() {
        for seq in 0..t.len() as u32 {
            assert!(network.scores.contains_key(&(id as u64, seq)), "trip {id} seq {seq}");
        }
    }

    let net_stats = server.net_stats();
    assert_eq!(net_stats.responses_dropped, 0);
    assert_eq!(net_stats.connections_accepted, 1);
    server.shutdown();
}

/// The remote-warm-restart acceptance test: stream half the fleet into
/// server A over TCP, capture a snapshot **over the wire**, kill A,
/// restore the blob into a fresh server B, finish the stream there, and
/// require every per-segment and final score (across both phases) to be
/// bit-identical to one uninterrupted in-process engine.
#[test]
fn snapshot_served_over_wire_restores_bit_exactly() {
    let (city, model) = trained();
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    let split = trips.len() + (events.len() - trips.len()) * 2 / 5;
    let cfg = || FleetConfig { num_shards: 2, max_batch: 32, ..FleetConfig::default() };

    let reference = in_process(model, &events, cfg());

    let mut network = Produced::default();

    // Phase A: half the traffic, then a snapshot over the wire.
    let server_a = NetServer::builder(Arc::clone(model))
        .fleet_config(cfg())
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect");
    send_events(&mut client_a, &events[..split]);
    client_a.flush().expect("barrier");
    let blob = client_a.snapshot().expect("snapshot over the wire");
    drain(&mut client_a, &mut network);
    drop(client_a);
    server_a.shutdown(); // the "crash": A's live sessions are gone

    // Phase B: restore the wire-served blob into a fresh server (different
    // shard count), reconnect, finish the stream.
    let image = image_from_bytes(blob).expect("blob decodes");
    let restored_count = image.sessions.len();
    assert!(restored_count > 0, "capture point should leave sessions in flight");
    let server_b = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig { num_shards: 3, max_batch: 32, ..FleetConfig::default() })
        .resume(image)
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect");
    send_events(&mut client_b, &events[split..]);
    let stats = client_b.flush().expect("barrier");
    assert_eq!(stats.sessions_restored, restored_count as u64);
    drain(&mut client_b, &mut network);

    assert_bit_identical(&network, &reference);
    assert_eq!(server_b.net_stats().responses_dropped, 0);
    server_b.shutdown();
}

/// Backpressure accounting is exact: with a tiny ingest queue, every
/// segment either produces a score or an explicit `Backpressure` reply —
/// nothing is silently buffered or lost.
#[test]
fn backpressure_replies_account_for_every_event() {
    let (city, model) = trained();
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let server = NetServer::builder(Arc::clone(model))
        .fleet_config(FleetConfig {
            num_shards: 1,
            queue_capacity: 8,
            max_batch: 4,
            ..FleetConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.trip_start(1, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    const BURST: usize = 2000;
    for _ in 0..BURST {
        client.segment(1, t.segments[0].0).expect("write");
    }
    client.flush().expect("barrier");
    // The queue is empty after the barrier, so the end cannot bounce.
    client.trip_end(1).expect("write");
    client.flush().expect("barrier");

    let mut scores = 0usize;
    let mut bounced = 0usize;
    let mut completed = None;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(_) => scores += 1,
            Response::Error { code: ErrorCode::Backpressure, trip: Some(1), .. } => bounced += 1,
            Response::TripComplete(tc) => completed = Some(tc),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(scores + bounced, BURST, "every segment scored or bounced");
    let completed = completed.expect("trip completed");
    assert_eq!(completed.completion, Completion::Ended);
    assert_eq!(completed.segments(), scores, "engine scored exactly the accepted events");
    // Accounting only holds if no response was dropped server-side.
    assert_eq!(server.net_stats().responses_dropped, 0);
    server.shutdown();
}

/// Events naming out-of-vocabulary segments get a typed `Rejected` reply
/// (the engine would drop them silently), and — the regression this
/// guards — a rejected `TripStart` does not strand its trip id: the same
/// id can start validly afterwards on the same connection.
#[test]
fn out_of_vocab_events_get_typed_rejects_without_stranding_trip_ids() {
    let (city, model) = trained();
    let vocab = model.vocab() as u32;
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let server = NetServer::builder(Arc::clone(model)).bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Bad SD endpoint: typed reject, id not claimed.
    client.trip_start(5, vocab + 7, sd.dest.0, t.time_slot).expect("write");
    client.flush().expect("barrier");
    match client.try_recv() {
        Some(Response::Error { code: ErrorCode::Rejected, trip: Some(5), .. }) => {}
        other => panic!("expected Rejected for trip 5, got {other:?}"),
    }

    // The same id now starts validly; an out-of-vocab segment mid-trip is
    // rejected without killing the session.
    client.trip_start(5, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    client.segment(5, t.segments[0].0).expect("write");
    client.segment(5, vocab + 1).expect("write");
    client.segment(5, t.segments[1].0).expect("write");
    client.trip_end(5).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);

    let mut scores = 0;
    let mut rejects = 0;
    let mut completed = None;
    while let Some(resp) = client.try_recv() {
        match resp {
            Response::Score(_) => scores += 1,
            Response::Error { code: ErrorCode::Rejected, trip: Some(5), .. } => rejects += 1,
            Response::TripComplete(tc) => completed = Some(tc),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((scores, rejects), (2, 1), "two scored segments, one typed reject");
    let completed = completed.expect("trip completed");
    assert_eq!(completed.completion, Completion::Ended);
    assert_eq!(completed.segments(), 2);
    server.shutdown();
}

/// Hostile bytes on a live socket: the server answers with a typed
/// `BadFrame` error, hangs up that connection, and keeps serving others.
#[test]
fn hostile_bytes_get_a_typed_error_and_a_clean_hangup() {
    use causaltad_suite::net::{read_response, RecvError, DEFAULT_MAX_FRAME};
    use std::io::Write;

    let (city, model) = trained();
    let server = NetServer::builder(Arc::clone(model)).bind("127.0.0.1:0").expect("bind");

    // Pure garbage: bad magic.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(&[0xDE; 64]).expect("write garbage");
    raw.flush().expect("flush");
    match read_response(&mut raw, DEFAULT_MAX_FRAME).expect("server replies before hangup") {
        Some(Response::Error { code: ErrorCode::BadFrame, .. }) => {}
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    // The server hangs up after a framing error.
    assert!(matches!(read_response(&mut raw, DEFAULT_MAX_FRAME), Ok(None) | Err(RecvError::Io(_))));

    // A crafted length prefix far beyond the server's cap: refused without
    // allocation, same typed reply.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(b"TADN");
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&u64::MAX.to_le_bytes());
    raw.write_all(&frame).expect("write header");
    raw.flush().expect("flush");
    match read_response(&mut raw, DEFAULT_MAX_FRAME).expect("server replies before hangup") {
        Some(Response::Error { code: ErrorCode::BadFrame, detail, .. }) => {
            assert!(detail.contains("exceeds"), "detail: {detail}");
        }
        other => panic!("expected BadFrame error, got {other:?}"),
    }

    // The server is still healthy: a well-behaved client works.
    let t = &city.data.test_id[0];
    let sd = t.sd_pair();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.trip_start(9, sd.source.0, sd.dest.0, t.time_slot).expect("write");
    client.segment(9, t.segments[0].0).expect("write");
    client.trip_end(9).expect("write");
    let stats = client.flush().expect("barrier");
    assert_eq!(stats.trips_completed, 1);
    server.shutdown();
}
