//! Umbrella-level integration: the fleet engine re-exported through
//! `causaltad_suite::serve` scores interleaved trips identically to the
//! sequential `OnlineScorer`, the fallible `try_online` API rejects bad
//! requests without panicking, and a trip scored across a
//! snapshot/restore boundary produces the same final score as one scored
//! in a single uninterrupted engine.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use causaltad_suite::core::{CausalTad, CausalTadConfig, OnlineError};
use causaltad_suite::serve::{
    image_from_bytes, image_to_bytes, Completion, Event, FleetConfig, FleetEngine,
};
use causaltad_suite::trajsim::{generate_city, City, CityConfig, Trajectory};

/// One trained model shared by every test in this file (training in debug
/// mode is expensive).
fn trained() -> &'static (City, Arc<CausalTad>) {
    static SHARED: OnceLock<(City, Arc<CausalTad>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let city = generate_city(&CityConfig::test_scale(321));
        let mut cfg = CausalTadConfig::test_scale();
        cfg.epochs = 1;
        let mut model = CausalTad::new(&city.net, cfg);
        model.fit(&city.data.train);
        (city, Arc::new(model))
    })
}

fn sequential_score(model: &CausalTad, t: &Trajectory) -> f64 {
    let sd = t.sd_pair();
    let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
    let mut last = f64::NAN;
    for &seg in &t.segments {
        last = scorer.push(seg.0);
    }
    last
}

/// Round-robin interleaving of complete trip streams: all starts first,
/// then one segment per live trip per step, each trip's end right after
/// its last segment.
fn interleave(trips: &[&Trajectory]) -> Vec<Event> {
    let mut events = Vec::new();
    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        events.push(Event::TripStart {
            id: id as u64,
            source: sd.source.0,
            dest: sd.dest.0,
            time_slot: t.time_slot,
        });
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for step in 0..longest {
        for (id, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                events.push(Event::Segment { id: id as u64, seg: seg.0 });
            }
            if step + 1 == t.len() {
                events.push(Event::TripEnd { id: id as u64 });
            }
        }
    }
    events
}

#[test]
fn umbrella_fleet_matches_sequential_and_rejects_bad_requests() {
    let (city, model) = trained();
    let model = Arc::clone(model);

    // try_online satellite: bad requests come back as errors, not panics.
    let vocab = model.vocab() as u32;
    assert!(matches!(
        model.try_online(vocab + 1, 0, 0),
        Err(OnlineError::SegmentOutOfRange { .. })
    ));
    assert!(model.try_online(0, 1, 0).is_ok());

    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let outcomes: Arc<Mutex<HashMap<u64, (f64, Completion)>>> = Arc::default();
    let sink = Arc::clone(&outcomes);
    let engine = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
        .on_complete(move |o| {
            sink.lock().unwrap().insert(o.id, (o.score, o.completion));
        })
        .build()
        .expect("trained model");

    for ev in interleave(&trips) {
        engine.submit(ev).unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.trips_completed, trips.len() as u64);

    let outcomes = outcomes.lock().unwrap();
    for (id, t) in trips.iter().enumerate() {
        let reference = sequential_score(&model, t);
        let (fleet_score, completion) = outcomes[&(id as u64)];
        assert_eq!(completion, Completion::Ended);
        assert!(
            (fleet_score - reference).abs() < 1e-6,
            "trip {id}: fleet {fleet_score} vs sequential {reference}"
        );
    }
}

/// The trip an event belongs to.
fn trip_of(ev: &Event) -> u64 {
    match *ev {
        Event::TripStart { id, .. } | Event::Segment { id, .. } | Event::TripEnd { id } => id,
    }
}

/// The cohort-submission contract behind the network tier's
/// cross-connection micro-batching: `try_submit_cohort` scores an
/// interleaved stream **bit-identically** to per-event `submit`, and when
/// a shard queue is saturated it bounces whole shard groups by index —
/// never a prefix — so each trip's events in a cohort are either all
/// accepted in order or all returned to the caller. Bounced events are
/// resubmitted (in their original relative order) until accepted, and the
/// end-to-end result must still match to the bit.
#[test]
fn cohort_submission_matches_per_event_ingest_and_bounces_whole_groups() {
    use causaltad_suite::serve::ScoreUpdate;

    let (city, model) = trained();
    let model = Arc::clone(model);
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(8).collect();
    let events = interleave(&trips);

    type Bits = Arc<Mutex<(HashMap<(u64, u32), u64>, HashMap<u64, (u64, usize)>)>>;
    let engine_with = |cfg: FleetConfig, sink: &Bits| {
        let scores = Arc::clone(sink);
        let finals = Arc::clone(sink);
        FleetEngine::builder(Arc::clone(&model))
            .config(cfg)
            .on_score(move |u: &ScoreUpdate| {
                scores.lock().unwrap().0.insert((u.id, u.seq), u.score.to_bits());
            })
            .on_complete(move |o| {
                if o.completion == Completion::Ended {
                    finals.lock().unwrap().1.insert(o.id, (o.score.to_bits(), o.segments));
                }
            })
            .build()
            .expect("trained model")
    };

    let reference: Bits = Arc::default();
    let engine = engine_with(FleetConfig { num_shards: 2, ..FleetConfig::default() }, &reference);
    for &ev in &events {
        engine.submit(ev).unwrap();
    }
    engine.shutdown();

    // Capacity-1 shard queues: back-to-back cohorts saturate them while
    // the workers are mid-batch, forcing real `full` bounces.
    let cohorted: Bits = Arc::default();
    let cfg =
        FleetConfig { num_shards: 2, queue_capacity: 1, max_batch: 8, ..FleetConfig::default() };
    let engine = engine_with(cfg, &cohorted);
    let mut feed = events.iter().copied();
    let mut carry: Vec<Event> = Vec::new();
    let mut bounced_cohorts = 0u64;
    let mut spins = 0u64;
    loop {
        let mut cohort = carry;
        carry = Vec::new();
        while cohort.len() < 7 {
            let Some(ev) = feed.next() else { break };
            cohort.push(ev);
        }
        if cohort.is_empty() {
            break;
        }
        let outcome = engine.try_submit_cohort(cohort.clone());
        assert!(outcome.closed.is_empty(), "live engine reported closed shards");
        let full: std::collections::HashSet<usize> = outcome.full.iter().copied().collect();
        assert_eq!(outcome.accepted as usize + full.len(), cohort.len(), "events went missing");
        // The whole-group contract, observed through trip routing: a trip
        // never splits between accepted and bounced within one cohort.
        for (i, a) in cohort.iter().enumerate() {
            for (j, b) in cohort.iter().enumerate() {
                if trip_of(a) == trip_of(b) {
                    assert_eq!(
                        full.contains(&i),
                        full.contains(&j),
                        "trip {} split across a bounce",
                        trip_of(a)
                    );
                }
            }
        }
        if !full.is_empty() {
            bounced_cohorts += 1;
            let mut indexes = outcome.full;
            indexes.sort_unstable(); // original relative order
            carry = indexes.into_iter().map(|i| cohort[i]).collect();
            spins += 1;
            assert!(spins < 10_000_000, "bounced cohort never drained");
        }
    }
    engine.shutdown();
    assert!(bounced_cohorts > 0, "capacity-1 queues never bounced a cohort");

    let reference = reference.lock().unwrap();
    let cohorted = cohorted.lock().unwrap();
    assert_eq!(cohorted.0, reference.0, "per-segment score bits diverged");
    assert_eq!(cohorted.1, reference.1, "final score bits diverged");
}

/// The warm-restart acceptance test: stream interleaved trips into an
/// engine, capture a fleet snapshot mid-flight, kill the engine, restore
/// the snapshot **through its serialized bytes** into a fresh engine with
/// a different shard count, finish the stream there, and require every
/// final score to match an uninterrupted sequential run.
#[test]
fn trip_scored_across_snapshot_restore_boundary_matches_uninterrupted_run() {
    let (city, model) = trained();
    let model = Arc::clone(model);
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    // Cut after all starts plus roughly 40% of the remaining traffic, so
    // the capture happens genuinely mid-trip for most sessions.
    let split = trips.len() + (events.len() - trips.len()) * 2 / 5;

    type FinalScores = Arc<Mutex<HashMap<u64, (f64, usize, Completion)>>>;
    let outcomes: FinalScores = Arc::default();
    let record = |sink: &FinalScores| {
        let sink = Arc::clone(sink);
        move |o: causaltad_suite::serve::TripOutcome| {
            // Shutdown flushes of the donor engine are not final results;
            // keep only genuine completions.
            if o.completion == Completion::Ended {
                sink.lock().unwrap().insert(o.id, (o.score, o.segments, o.completion));
            }
        }
    };

    let donor = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { num_shards: 2, max_batch: 32, ..FleetConfig::default() })
        .on_complete(record(&outcomes))
        .build()
        .expect("trained model");
    for ev in &events[..split] {
        donor.submit(*ev).unwrap();
    }
    let blob = donor.snapshot_bytes().expect("all shards live");
    donor.shutdown(); // the "crash": live sessions on the donor are gone

    let image = image_from_bytes(blob.clone()).expect("snapshot decodes");
    // The persisted artifact is stable: re-encoding reproduces it.
    assert_eq!(image_to_bytes(&image).to_vec(), blob.to_vec());
    let live: Vec<u64> = image.sessions.iter().map(|rec| rec.id).collect();
    assert!(!live.is_empty(), "capture point should leave sessions in flight");

    let restored = FleetEngine::restore(Arc::clone(&model), image)
        .config(FleetConfig { num_shards: 3, max_batch: 32, ..FleetConfig::default() })
        .on_complete(record(&outcomes))
        .build()
        .expect("snapshot fits the model");
    for ev in &events[split..] {
        restored.submit(*ev).unwrap();
    }
    let stats = restored.shutdown();
    assert_eq!(stats.sessions_restored, live.len() as u64);
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.rejected, 0);

    // Between the donor (trips ended pre-capture) and the restored engine
    // (everything else), every trip must have exactly one final score —
    // equal to the uninterrupted sequential reference.
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), trips.len());
    for (id, t) in trips.iter().enumerate() {
        let reference = sequential_score(&model, t);
        let (score, segments, completion) = outcomes[&(id as u64)];
        assert_eq!(completion, Completion::Ended, "trip {id}");
        assert_eq!(segments, t.len(), "trip {id}");
        assert!(
            (score - reference).abs() < 1e-6,
            "trip {id}: across-restart {score} vs uninterrupted {reference}"
        );
    }
}

/// The incremental-snapshot acceptance test: a checkpoint plus the `TADD`
/// delta chain folded over it restores a fleet **bit-identically** to a
/// full image captured at the same quiesce point. Two engines are
/// restored from the two artifacts and fed the identical remaining
/// stream; every final score must match to the bit (and the sequential
/// reference to 1e-6).
#[test]
fn delta_chain_restore_matches_full_snapshot_restore_bit_exactly() {
    use causaltad_suite::serve::{delta_from_bytes, DeltaBase};

    let (city, model) = trained();
    let model = Arc::clone(model);
    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(10).collect();
    let events = interleave(&trips);
    let tail = events.len() - trips.len();
    // Three capture points mid-stream: checkpoint, then two deltas.
    let (a, b, c) = (trips.len() + tail / 5, trips.len() + tail / 2, trips.len() + tail * 4 / 5);

    type FinalScores = Arc<Mutex<HashMap<u64, (u64, usize)>>>;
    let record = |sink: &FinalScores| {
        let sink = Arc::clone(sink);
        move |o: causaltad_suite::serve::TripOutcome| {
            if o.completion == Completion::Ended {
                sink.lock().unwrap().insert(o.id, (o.score.to_bits(), o.segments));
            }
        }
    };

    let donor_finals: FinalScores = Arc::default();
    let donor = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
        .on_complete(record(&donor_finals))
        .build()
        .expect("trained model");
    for ev in &events[..a] {
        donor.submit(*ev).unwrap();
    }
    let (base_image, epoch) = donor.checkpoint().expect("checkpoint arms the chain");
    for ev in &events[a..b] {
        donor.submit(*ev).unwrap();
    }
    let d1 = donor.delta_bytes().expect("first delta");
    for ev in &events[b..c] {
        donor.submit(*ev).unwrap();
    }
    let d2 = donor.delta_bytes().expect("second delta");
    // Same quiesce point, captured the expensive way: a full image.
    let full = donor.snapshot().expect("full capture at the same cut");
    donor.shutdown();

    // Fold the chain through its serialized `TADD` form — the blobs a
    // durable log would replay.
    let mut base = DeltaBase::new(base_image, epoch);
    for blob in [d1, d2] {
        let delta = delta_from_bytes(blob).expect("TADD decodes");
        assert!(delta.sessions.len() < full.sessions.len() + trips.len());
        base.apply(&delta).expect("chain applies in order");
    }
    assert_eq!(base.applied(), 2);
    let folded = base.into_image();
    assert!(!folded.sessions.is_empty(), "cut point leaves sessions live");

    // Restore both artifacts and finish the identical stream on each.
    let mut finals: Vec<HashMap<u64, (u64, usize)>> = Vec::new();
    for image in [folded, full] {
        let sink: FinalScores = Arc::default();
        let restored = FleetEngine::restore(Arc::clone(&model), image)
            .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
            .on_complete(record(&sink))
            .build()
            .expect("restore");
        for ev in &events[c..] {
            restored.submit(*ev).unwrap();
        }
        let stats = restored.shutdown();
        assert_eq!(stats.rejected, 0);
        finals.push(Arc::try_unwrap(sink).unwrap().into_inner().unwrap());
    }
    let (chain_finals, full_finals) = (&finals[0], &finals[1]);
    assert_eq!(chain_finals, full_finals, "delta-chain restore diverged from full restore");

    // And the union with the donor's pre-capture completions covers every
    // trip, matching the uninterrupted sequential reference.
    let donor_finals = donor_finals.lock().unwrap();
    for (id, t) in trips.iter().enumerate() {
        let id = id as u64;
        let (bits, segments) =
            *chain_finals.get(&id).or_else(|| donor_finals.get(&id)).expect("every trip ends");
        assert_eq!(segments, t.len(), "trip {id}");
        let reference = sequential_score(&model, t);
        assert!(
            (f64::from_bits(bits) - reference).abs() < 1e-6,
            "trip {id}: chained {0} vs sequential {reference}",
            f64::from_bits(bits)
        );
    }
}
