//! Umbrella-level integration: the fleet engine re-exported through
//! `causaltad_suite::serve` scores interleaved trips identically to the
//! sequential `OnlineScorer`, and the fallible `try_online` API rejects
//! bad requests without panicking.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use causaltad_suite::core::{CausalTad, CausalTadConfig, OnlineError};
use causaltad_suite::serve::{Completion, Event, FleetConfig, FleetEngine};
use causaltad_suite::trajsim::{generate_city, CityConfig, Trajectory};

#[test]
fn umbrella_fleet_matches_sequential_and_rejects_bad_requests() {
    let city = generate_city(&CityConfig::test_scale(321));
    let mut cfg = CausalTadConfig::test_scale();
    cfg.epochs = 1;
    let mut model = CausalTad::new(&city.net, cfg);
    model.fit(&city.data.train);
    let model = Arc::new(model);

    // try_online satellite: bad requests come back as errors, not panics.
    let vocab = model.vocab() as u32;
    assert!(matches!(
        model.try_online(vocab + 1, 0, 0),
        Err(OnlineError::SegmentOutOfRange { .. })
    ));
    assert!(model.try_online(0, 1, 0).is_ok());

    let trips: Vec<&Trajectory> = city.data.test_id.iter().take(12).collect();
    let outcomes: Arc<Mutex<HashMap<u64, (f64, Completion)>>> = Arc::default();
    let sink = Arc::clone(&outcomes);
    let engine = FleetEngine::builder(Arc::clone(&model))
        .config(FleetConfig { num_shards: 2, ..FleetConfig::default() })
        .on_complete(move |o| {
            sink.lock().unwrap().insert(o.id, (o.score, o.completion));
        })
        .build()
        .expect("trained model");

    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        engine
            .submit(Event::TripStart {
                id: id as u64,
                source: sd.source.0,
                dest: sd.dest.0,
                time_slot: t.time_slot,
            })
            .unwrap();
    }
    let longest = trips.iter().map(|t| t.len()).max().unwrap();
    for step in 0..longest {
        for (id, t) in trips.iter().enumerate() {
            if let Some(seg) = t.segments.get(step) {
                engine.submit(Event::Segment { id: id as u64, seg: seg.0 }).unwrap();
            }
            if step + 1 == t.len() {
                engine.submit(Event::TripEnd { id: id as u64 }).unwrap();
            }
        }
    }
    let stats = engine.shutdown();
    assert_eq!(stats.trips_completed, trips.len() as u64);

    let outcomes = outcomes.lock().unwrap();
    for (id, t) in trips.iter().enumerate() {
        let sd = t.sd_pair();
        let mut scorer = model.online(sd.source.0, sd.dest.0, t.time_slot);
        let mut reference = f64::NAN;
        for &seg in &t.segments {
            reference = scorer.push(seg.0);
        }
        let (fleet_score, completion) = outcomes[&(id as u64)];
        assert_eq!(completion, Completion::Ended);
        assert!(
            (fleet_score - reference).abs() < 1e-6,
            "trip {id}: fleet {fleet_score} vs sequential {reference}"
        );
    }
}
